"""Density-adaptive dispatch: bit-identity, policy, and platform threading.

The contract under test, layer by layer:

* **policy** — :func:`choose_representation` /
  :func:`choose_intersect_algorithm` pick organizations and algorithms at
  the documented thresholds;
* **backend** — :class:`AdaptiveSet` is element-identical to
  :class:`SortedSet` on every operation (hypothesis-driven), keeps its
  bitmap coherent with the canonical array, and records the *same
  normalized element counters* as every other exact backend;
* **platform** — ``--dispatch adaptive`` swaps exact backends (sketches
  exempt, reference pinned static), threads through
  ``ExperimentPlan.budget_key`` / ``Query`` overrides, and a static vs
  adaptive suite run is ``suite-diff --semantic``-identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveSet,
    BitSet,
    CompressedSortedSet,
    HashSet,
    RoaringSet,
    SortedSet,
)
from repro.core.counters import COUNTERS, snapshot
from repro.core.dispatch import (
    GALLOP_RATIO,
    choose_intersect_algorithm,
    choose_representation,
)
from repro.core.ops import (
    as_sorted_unique,
    diff_merge,
    intersect_count_galloping,
    intersect_count_merge,
    intersect_galloping,
    intersect_merge,
    member_mask_galloping,
    member_mask_merge,
    union_merge,
)
from repro.core.packed import (
    pack_sorted,
    popcount,
    unpack,
    words_needed,
)
from repro.platform.cli import parse_args, resolve_set_class
from repro.platform.runner import diff_payloads, strip_timing
from repro.platform.session import MiningSession
from repro.platform.suite import ExperimentPlan, resolve_backend

EXACT_BACKENDS = [SortedSet, AdaptiveSet, BitSet, RoaringSet, HashSet,
                  CompressedSortedSet]

elements = st.integers(min_value=0, max_value=5_000)
element_lists = st.lists(elements, max_size=80)


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------
def test_choose_representation_thresholds():
    assert choose_representation(0, 0) == "array"
    # 64 elements in [0, 63] need one word: maximally dense.
    assert choose_representation(64, 63) == "bitmap"
    # A lone huge element: words(max) far exceeds the cardinality.
    assert choose_representation(1, 1 << 20) == "array"
    # Boundary: words(max) == cardinality packs.
    assert choose_representation(2, 127) == "bitmap"
    assert choose_representation(1, 127) == "array"


def test_choose_intersect_algorithm_thresholds():
    assert choose_intersect_algorithm(4, 40) == "gallop"   # tiny side
    assert choose_intersect_algorithm(100, 100) == "merge"
    skew = GALLOP_RATIO * 100
    assert choose_intersect_algorithm(100, skew) == "merge"  # at ratio
    assert choose_intersect_algorithm(100, skew + 1) == "gallop"
    assert choose_intersect_algorithm(skew + 1, 100) == "gallop"  # symmetric


# ---------------------------------------------------------------------------
# merge-path kernels vs the numpy sort-based references
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(a=element_lists, b=element_lists)
def test_merge_kernels_match_numpy(a, b):
    sa = np.unique(np.asarray(a, dtype=np.int64))
    sb = np.unique(np.asarray(b, dtype=np.int64))
    assert np.array_equal(intersect_merge(sa, sb), np.intersect1d(sa, sb))
    assert np.array_equal(intersect_galloping(sa, sb),
                          np.intersect1d(sa, sb))
    assert np.array_equal(union_merge(sa, sb), np.union1d(sa, sb))
    assert np.array_equal(diff_merge(sa, sb), np.setdiff1d(sa, sb))
    expected_count = len(np.intersect1d(sa, sb))
    assert intersect_count_merge(sa, sb) == expected_count
    assert intersect_count_galloping(sa, sb) == expected_count
    isin = np.isin(sa, sb)
    assert np.array_equal(member_mask_merge(sa, sb), isin)
    assert np.array_equal(member_mask_galloping(sa, sb), isin)


@settings(max_examples=60, deadline=None)
@given(a=element_lists)
def test_as_sorted_unique_any_input(a):
    arr = np.asarray(a, dtype=np.int64)
    for variant in (arr, arr[::-1]):
        out = as_sorted_unique(variant)
        assert np.array_equal(out, np.unique(arr))


# ---------------------------------------------------------------------------
# packed-word kernels
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(a=element_lists)
def test_pack_unpack_roundtrip(a):
    arr = np.unique(np.asarray(a, dtype=np.int64))
    words = pack_sorted(arr)
    assert np.array_equal(unpack(words), arr)
    assert popcount(words) == len(arr)
    if len(arr):
        assert len(words) == words_needed(int(arr[-1]))


# ---------------------------------------------------------------------------
# AdaptiveSet — element identity with SortedSet, layout invariants
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(a=element_lists, b=element_lists, x=elements)
def test_adaptive_matches_sorted(a, b, x):
    sa, sb = AdaptiveSet.from_iterable(a), AdaptiveSet.from_iterable(b)
    ra, rb = SortedSet.from_iterable(a), SortedSet.from_iterable(b)
    assert np.array_equal(sa.intersect(sb).to_array(),
                          ra.intersect(rb).to_array())
    assert sa.intersect_count(sb) == ra.intersect_count(rb)
    assert np.array_equal(sa.union(sb).to_array(), ra.union(rb).to_array())
    assert np.array_equal(sa.diff(sb).to_array(), ra.diff(rb).to_array())
    assert sa.contains(x) == ra.contains(x)
    # Fused assign == unfused assign + intersect_inplace.
    fused, unfused = AdaptiveSet.empty(), AdaptiveSet.empty()
    fused.intersect_assign(sa, sb)
    unfused.assign(sa)
    unfused.intersect_inplace(sb)
    assert np.array_equal(fused.to_array(), unfused.to_array())
    # Mutations track SortedSet exactly.
    ca, cr = sa.clone(), ra.clone()
    ca.add(x), cr.add(x)
    assert np.array_equal(ca.to_array(), cr.to_array())
    ca.remove(x), cr.remove(x)
    assert np.array_equal(ca.to_array(), cr.to_array())


def _assert_layout_coherent(s: AdaptiveSet) -> None:
    if s._words is not None:
        assert np.array_equal(unpack(s._words), s._data)
        assert len(s._words) <= max(1, len(s._data))


@settings(max_examples=60, deadline=None)
@given(a=element_lists, b=element_lists, x=elements)
def test_adaptive_bitmap_stays_coherent(a, b, x):
    sa, sb = AdaptiveSet.from_iterable(a), AdaptiveSet.from_iterable(b)
    for s in (sa, sb, sa.intersect(sb), sa.union(sb), sa.diff(sb)):
        _assert_layout_coherent(s)
    c = sa.clone()
    c.add(x)
    _assert_layout_coherent(c)
    c.remove(x)
    _assert_layout_coherent(c)
    c.intersect_assign(sa, sb)
    _assert_layout_coherent(c)


def test_adaptive_assign_aliasing_is_safe():
    # assign() aliases payloads; a point mutation through one alias must
    # never leak into the other (copy-on-write bitmap, rebound arrays).
    dense = AdaptiveSet.from_iterable(range(256))
    alias = AdaptiveSet.empty()
    alias.assign(dense)
    alias.remove(7)
    assert dense.contains(7)
    assert not alias.contains(7)
    alias.add(7)
    alias.add(1000)
    assert not dense.contains(1000)
    _assert_layout_coherent(dense)
    _assert_layout_coherent(alias)


def test_from_sorted_array_validates_every_exact_backend():
    # Unsorted / duplicated input must never silently corrupt a set
    # (BitSet read its buffer size off arr[-1]; RoaringSet split chunk
    # boundaries with np.diff — both require sortedness).
    bad = np.array([9, 3, 3, 70_000, 1], dtype=np.int64)
    want = np.array([1, 3, 9, 70_000], dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    for cls in EXACT_BACKENDS:
        got = cls.from_sorted_array(bad)
        assert np.array_equal(got.to_array(), want), cls.__name__
        assert got.contains(70_000) and not got.contains(2)
        assert cls.from_sorted_array(empty).cardinality() == 0


# ---------------------------------------------------------------------------
# normalized counter units — identical deltas across exact backends
# ---------------------------------------------------------------------------
def _exercise(cls):
    a = cls.from_iterable(range(0, 120, 2))
    b = cls.from_iterable(range(0, 90, 3))
    before = snapshot()
    a.intersect(b)
    a.intersect_count(b)
    a.union(b)
    a.diff(b)
    scratch = cls.empty()
    scratch.intersect_assign(a, b)
    a.contains(7)
    c = a.clone()
    c.add(7)      # absent: 1 write
    c.add(7)      # present: no write
    c.remove(7)   # present: 1 write
    c.remove(7)   # absent: no write
    delta = before.delta(snapshot())
    return (delta.elements_read, delta.elements_written,
            delta.point_ops, delta.sketch_builds)


def test_counter_units_identical_across_backends():
    reference = _exercise(SortedSet)
    for cls in EXACT_BACKENDS[1:]:
        assert _exercise(cls) == reference, cls.__name__


def test_adaptive_words_scanned_attribution():
    dense_a = AdaptiveSet.from_iterable(range(0, 512))
    dense_b = AdaptiveSet.from_iterable(range(256, 768))
    sparse = AdaptiveSet.from_iterable([1, 1000, 4000])
    mid = AdaptiveSet.from_iterable(range(0, 4096, 2))
    before = snapshot()
    dense_a.intersect_count(dense_b)          # bitmap x bitmap
    sparse.intersect_count(mid)               # tiny side: hashed probes
    delta = before.delta(snapshot())
    assert delta.words_scanned.get("adaptive/bitmap", 0) > 0
    assert delta.words_scanned.get("adaptive/hash", 0) == 3
    # Spacing 128 keeps words(max) > cardinality, so both stay arrays;
    # balanced sizes above the hash/gallop cut-offs select the merge path.
    arr_a = AdaptiveSet.from_iterable(range(0, 38400, 128))
    arr_b = AdaptiveSet.from_iterable(range(64, 38464, 128))
    assert arr_a.representation() == arr_b.representation() == "array"
    before = snapshot()
    arr_a.intersect_count(arr_b)              # balanced arrays: merge
    delta = before.delta(snapshot())
    assert delta.words_scanned.get("adaptive/merge", 0) > 0


# ---------------------------------------------------------------------------
# platform threading
# ---------------------------------------------------------------------------
def test_resolve_set_class_dispatch_mapping():
    assert resolve_set_class("sorted") is SortedSet
    assert resolve_set_class("sorted", dispatch="adaptive") is AdaptiveSet
    assert resolve_set_class("bitset", dispatch="adaptive") is AdaptiveSet
    # Sketch backends are exempt: their accuracy contract is budget-tuned.
    bloom = resolve_set_class("bloom", dispatch="adaptive")
    assert not bloom.IS_EXACT
    with pytest.raises(ValueError, match="dispatch"):
        resolve_set_class("sorted", dispatch="wat")


def test_parse_args_dispatch_flag():
    args = parse_args(["--dataset", "sc-ht-mini", "--dispatch", "adaptive"])
    assert args.dispatch == "adaptive"
    assert args.resolve_set_class() is AdaptiveSet
    assert parse_args(["--dataset", "sc-ht-mini"]).dispatch == "static"


def test_reference_backend_pinned_static():
    plan = ExperimentPlan(datasets=("sc-ht-mini",), dispatch="adaptive")
    from repro.graph import load_dataset

    graph = load_dataset("sc-ht-mini")
    # The reference backend anchors the cross-check: never swapped.
    assert resolve_backend(plan, "sc-ht-mini", "sorted", graph) is SortedSet
    assert (resolve_backend(plan, "sc-ht-mini", "bitset", graph)
            is AdaptiveSet)


def test_budget_key_carries_dispatch():
    static = ExperimentPlan(dispatch="static")
    adaptive = ExperimentPlan(dispatch="adaptive")
    assert static.budget_key() != adaptive.budget_key()


def test_query_dispatch_builder():
    with MiningSession() as session:
        q = session.query("tc").on("sc-ht-mini").dispatch("adaptive")
        assert q.plan().dispatch == "adaptive"
        q2 = session.query("tc").on("sc-ht-mini").with_overrides(
            {"dispatch": "adaptive"}
        )
        assert q2.plan().dispatch == "adaptive"
        with pytest.raises(ValueError):
            session.query("tc").dispatch("wat")


# ---------------------------------------------------------------------------
# suite identity — static vs adaptive is suite-diff --semantic identical
# ---------------------------------------------------------------------------
def test_suite_static_vs_adaptive_semantic_identity():
    base = dict(
        datasets=("sc-ht-mini",),
        kernels=("tc", "tc-merge", "kclique", "4clique", "kstar", "bk"),
        set_classes=("sorted", "bitset", "adaptive"),
        orderings=("DGR",),
        k=4,
        repeats=1,
    )
    with MiningSession() as session:
        static = session.run_plan(ExperimentPlan(**base, dispatch="static"))
        adaptive = session.run_plan(
            ExperimentPlan(**base, dispatch="adaptive")
        )
    problems = diff_payloads(static[0], adaptive[0], semantic=True)
    assert problems == []
    # Without the semantic projection the provenance difference shows:
    # the non-reference exact cells resolve to AdaptiveSet.
    resolved = {c["set_class"]: c["resolved_class"]
                for c in adaptive[0]["cells"]}
    assert resolved["bitset"] == "AdaptiveSet"
    assert resolved["sorted"] == "SortedSet"  # pinned reference
    # Every value agrees cell-for-cell.
    static_vals = [(c["kernel"], c["set_class"], c["value"])
                   for c in strip_timing(static[0])["cells"]]
    adaptive_vals = [(c["kernel"], c["set_class"], c["value"])
                     for c in strip_timing(adaptive[0])["cells"]]
    assert static_vals == adaptive_vals

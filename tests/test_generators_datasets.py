"""Synthetic generators and the Table 7 dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DATASETS, dataset_names, load_dataset, suite
from repro.graph import generators as gen
from repro.graph.stats import total_triangles


class TestGenerators:
    def test_erdos_renyi_nm_exact(self):
        g = gen.erdos_renyi_nm(50, 100, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 100

    def test_erdos_renyi_nm_caps_at_complete(self):
        g = gen.erdos_renyi_nm(5, 1000, seed=1)
        assert g.num_edges == 10

    def test_erdos_renyi_gnp_scale(self):
        g = gen.erdos_renyi(60, 0.2, seed=3)
        expected = 0.2 * 60 * 59 / 2
        assert 0.5 * expected < g.num_edges < 1.5 * expected

    def test_determinism(self):
        a = gen.kronecker(8, 4, seed=7)
        b = gen.kronecker(8, 4, seed=7)
        assert a == b
        assert a != gen.kronecker(8, 4, seed=8)

    def test_kronecker_power_law_skew(self):
        g = gen.kronecker(10, 8, seed=2)
        degrees = g.degrees()
        # Heavy tail: max degree far above the mean.
        assert degrees.max() > 5 * degrees.mean()

    def test_barabasi_albert_connected_tail(self):
        g = gen.barabasi_albert(200, 2, seed=4)
        assert g.num_nodes == 200
        assert g.degrees().max() > 8  # hubs emerge

    def test_holme_kim_has_many_triangles(self):
        clustered = gen.holme_kim(300, 4, 0.8, seed=5)
        unclustered = gen.barabasi_albert(300, 4, seed=5)
        assert total_triangles(clustered) > total_triangles(unclustered)

    def test_watts_strogatz_low_skew(self):
        g = gen.watts_strogatz(200, 8, 0.05, seed=6)
        degrees = g.degrees()
        assert degrees.max() <= 2 * degrees.mean()

    def test_road_grid_triangle_free_without_diagonals(self):
        g = gen.road_grid(10, 10, extra_p=0.0)
        assert total_triangles(g) == 0
        assert g.num_edges == 2 * 10 * 9

    def test_planted_cliques_contains_clique(self):
        g = gen.planted_cliques(100, 50, [(8, 1)], seed=7)
        # Some 8 vertices must form a clique: check max core >= 7.
        from repro.preprocess import degeneracy_order

        _, d = degeneracy_order(g)
        assert d >= 7

    def test_bipartite_projection_caps_raters(self):
        g = gen.bipartite_projection(200, 20, 3, seed=8, max_raters=10)
        # No vertex participates in a clique larger than the cap.
        from repro.preprocess import degeneracy_order

        _, d = degeneracy_order(g)
        assert d <= 10 * 3  # at most 3 items x cap-sized cliques

    def test_star_of_cliques_known_structure(self):
        g = gen.star_of_cliques(4, 3)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 6


class TestDatasets:
    def test_registry_is_nonempty_and_loads(self):
        assert len(DATASETS) >= 25
        g = load_dataset("gearbox-mini")
        assert g.num_nodes > 0

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_category_filter(self):
        social = dataset_names("so")
        assert "orkut-mini" in social
        assert all(DATASETS[n].category == "so" for n in social)

    def test_all_categories_covered(self):
        cats = {spec.category for spec in DATASETS.values()}
        assert cats >= {"so", "wb", "st", "sc", "re", "bi", "co", "ec", "ro"}

    def test_suites(self):
        assert len(suite("quick")) == 4
        assert set(suite("quick")) <= set(suite("all"))
        assert set(suite("default")) <= set(suite("all"))
        with pytest.raises(ValueError):
            suite("bogus")

    def test_datasets_deterministic(self):
        assert load_dataset("jester2-mini") == load_dataset("jester2-mini")

    def test_every_spec_has_provenance(self):
        for spec in DATASETS.values():
            assert spec.mirrors
            assert spec.why


class TestRealDatasets:
    """The SNAP-backed entries: cache path, offline fallback, provenance."""

    def test_registered_in_the_main_registry(self):
        from repro.graph.datasets import REAL_DATASETS

        for name in ("ca-grqc", "email-eu-core"):
            assert name in REAL_DATASETS
            assert name in DATASETS
            assert "SNAP" in DATASETS[name].mirrors

    def test_offline_fallback_is_deterministic_and_real_scale(self, monkeypatch, tmp_path):
        from repro.graph.datasets import REAL_DATASETS, dataset_provenance

        # An empty cache dir and no REPRO_AUTO_FETCH: must fall back to
        # the synthetic twin without touching the network.
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_AUTO_FETCH", raising=False)
        for name, spec in REAL_DATASETS.items():
            g1 = load_dataset(name)
            assert dataset_provenance(name) == "fallback"
            assert g1 == load_dataset(name)
            # Same order of magnitude as the published graph.
            assert 0.5 * spec.num_nodes <= g1.num_nodes <= 2 * spec.num_nodes
            assert 0.3 * spec.num_edges <= g1.num_edges <= 3 * spec.num_edges

    def test_cached_edge_list_wins_over_fallback(self, monkeypatch, tmp_path):
        from repro.graph.datasets import dataset_provenance

        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        # SNAP-style file: comments, non-contiguous IDs, both directions.
        (tmp_path / "ca-grqc.el").write_text(
            "# FromNodeId ToNodeId\n10 20\n20 10\n20 30\n10 30\n30 30\n"
        )
        g = load_dataset("ca-grqc")
        assert dataset_provenance("ca-grqc") == "cache"
        assert g.num_nodes == 3  # densely relabeled
        assert g.num_edges == 3  # deduped, self-loop dropped

    def test_gzipped_cache_supported(self, monkeypatch, tmp_path):
        import gzip

        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with gzip.open(tmp_path / "email-eu-core.txt.gz", "wt") as handle:
            handle.write("0 1\n1 2\n2 0\n")
        g = load_dataset("email-eu-core")
        assert (g.num_nodes, g.num_edges) == (3, 3)

    def test_fetch_writes_into_the_cache_dir(self, monkeypatch, tmp_path):
        import gzip
        import io

        from repro.graph import datasets as ds

        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        payload = gzip.compress(b"0 1\n1 2\n")

        class _Response(io.BytesIO):
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def fake_urlopen(url, timeout):
            assert url == ds.REAL_DATASETS["ca-grqc"].url
            return _Response(payload)

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        path = ds.fetch_dataset("ca-grqc")
        assert path.endswith("ca-grqc.txt.gz")
        g = load_dataset("ca-grqc")
        assert ds.dataset_provenance("ca-grqc") == "cache"
        assert (g.num_nodes, g.num_edges) == (3, 2)

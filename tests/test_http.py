"""The HTTP serving tier (platform/http.py + platform/jobs.py).

One server = one resident MiningSession behind an asyncio front door.
These tests run the real thing — a socket server on a loopback port,
exercised with stdlib ``http.client`` — because the serving tier's whole
contract is wire-level: request parsing, admission pushback headers,
tenant headers, job polling, and artifacts that survive a restart.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

import repro.platform.bench as bench
from repro.platform.http import (
    AdmissionControl,
    MiningHTTPServer,
    TenantQuota,
    load_tenants,
    running_server,
)
from repro.platform.jobs import JOB_SCHEMA, JobStore
from repro.platform.runner import diff_payloads
from repro.platform.session import MiningSession
from repro.platform.suite import ExperimentPlan


def _request(port: int, method: str, path: str, body=None, headers=None):
    """One request, parsed: ``(status, payload, response)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
            headers=headers or {},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else {}, response
    finally:
        conn.close()


def _wait_for_job(port: int, job_id: str, timeout: float = 120.0):
    deadline = time.time() + timeout
    while True:
        status, record, _ = _request(port, "GET", f"/jobs/{job_id}")
        assert status == 200
        if record["state"] in ("done", "failed", "interrupted"):
            return record
        assert time.time() < deadline, f"job {job_id} never finished"
        time.sleep(0.05)


@pytest.fixture
def artifact_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
    return tmp_path


class TestQueryEndpoint:
    @pytest.fixture(scope="class")
    def server(self):
        with running_server() as server:
            yield server

    def test_golden_query_over_a_real_socket(self, server):
        status, payload, response = _request(
            server.port, "POST", "/query",
            {"kernel": "tc", "dataset": "sc-ht-mini", "backend": "bitset"},
        )
        assert status == 200
        assert response.getheader("Content-Type") == "application/json"
        result = payload["result"]
        assert result["kernel"] == "tc"
        assert result["dataset"] == "sc-ht-mini"
        assert result["resolved_class"] == "BitSet"
        assert result["exact"] is True
        assert result["wall_seconds"] > 0
        assert result["counters"]["set_ops"] > 0
        assert payload["tenant"] == "public"
        # The golden value: the mini dataset's triangle count is pinned
        # by the whole suite; the wire must carry exactly it.
        with MiningSession() as session:
            direct = (session.query("tc").on("sc-ht-mini")
                      .backend("bitset").run())
        assert result["value"] == direct.value

    def test_query_cell_matches_the_cli_path(self, server):
        """The served cell is the suite cell — same fields, same values."""
        status, payload, _ = _request(
            server.port, "POST", "/query",
            {"kernel": "4clique", "dataset": "sc-ht-mini",
             "backend": "bitset", "ordering": "DGR"},
        )
        assert status == 200
        served = payload["result"]["cell"]
        with MiningSession() as session:
            direct = (session.query("4clique").on("sc-ht-mini")
                      .backend("bitset").ordering("DGR").run().cell)
        timing = ("seconds",)
        assert {k: v for k, v in served.items()
                if k not in timing and k != "extras"} == \
               {k: v for k, v in direct.items()
                if k not in timing and k != "extras"}

    def test_variants_run_as_one_batch(self, server):
        status, payload, _ = _request(
            server.port, "POST", "/query",
            {"kernel": "tc", "dataset": "sc-ht-mini",
             "variants": [{"backend": "bitset"}, {"backend": "sorted"}]},
        )
        assert status == 200
        results = payload["results"]
        assert [r["resolved_class"] for r in results] == \
            ["BitSet", "SortedSet"]
        assert results[0]["value"] == results[1]["value"]

    def test_bad_requests_answer_4xx_not_500(self, server):
        cases = [
            ("POST", "/query", {"dataset": "sc-ht-mini"}, 400),     # no kernel
            ("POST", "/query", {"kernel": "tc"}, 400),              # no dataset
            ("POST", "/query",
             {"kernel": "nope", "dataset": "sc-ht-mini"}, 400),
            ("POST", "/query",
             {"kernel": "tc", "dataset": "nope"}, 404),
            ("POST", "/query",
             {"kernel": "tc", "dataset": "sc-ht-mini",
              "unknown_knob": 1}, 400),
            ("GET", "/nope", None, 404),
            ("GET", "/jobs/job-999999", None, 404),
            ("GET", "/query", None, 405),
        ]
        for method, path, body, expected in cases:
            status, payload, _ = _request(server.port, method, path, body)
            assert status == expected, (path, payload)
            assert "error" in payload

    def test_malformed_json_is_a_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=60)
        try:
            conn.request("POST", "/query", body=b"{not json")
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_healthz_and_stats(self, server):
        status, health, _ = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        status, stats, _ = _request(server.port, "GET", "/stats")
        assert status == 200
        assert stats["session"]["queries"] > 0
        assert stats["admission"]["admitted"] > 0
        assert stats["admission"]["rejected"] == 0
        assert stats["tenants"]["public"]["usage"]["queries"] > 0


class TestAdmissionControl:
    def test_bounded_queue_unit(self):
        admission = AdmissionControl(max_inflight=1, backlog=1)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()   # 1 in service + 1 queued
        assert admission.rejected == 1
        admission.release(0.5)
        assert admission.try_acquire()
        assert admission.retry_after() >= 1

    def test_full_server_answers_429_with_retry_after(self):
        with running_server(max_inflight=1, backlog=0) as server:
            # Fill the only admission slot from the outside, exactly as a
            # stuck in-flight request would hold it.
            assert server.admission.try_acquire()
            try:
                status, payload, response = _request(
                    server.port, "POST", "/query",
                    {"kernel": "tc", "dataset": "sc-ht-mini",
                     "backend": "bitset"},
                )
                assert status == 429
                assert int(response.getheader("Retry-After")) >= 1
                assert "capacity" in payload["error"]
            finally:
                server.admission.release()
            # Slot freed: the same request is admitted and served.
            status, payload, _ = _request(
                server.port, "POST", "/query",
                {"kernel": "tc", "dataset": "sc-ht-mini",
                 "backend": "bitset"},
            )
            assert status == 200
            _, stats, _ = _request(server.port, "GET", "/stats")
            assert stats["admission"]["rejected"] == 1
            assert stats["tenants"]["public"]["usage"]["rejected"] == 1


class TestTenantQuotas:
    def test_clamp_overrides_unit(self):
        quota = TenantQuota(max_bloom_bits=64, max_cache_bytes=1 << 20,
                            worker_share=0.5)
        clamped, applied = quota.clamp_overrides(
            {"bits": 1024, "shared_bits": 32, "backend": "bloom"}
        )
        assert clamped["bits"] == 64
        assert clamped["shared_bits"] == 32          # under cap: untouched
        assert clamped["cache_budget_bytes"] == 1 << 20
        assert applied["bits"] == {"requested": 1024, "granted": 64}
        assert quota.max_workers(4) == 2
        assert quota.max_workers(1) == 1             # floor, never 0
        assert TenantQuota().clamp_overrides({"bits": 10 ** 9})[1] == {}
        assert TenantQuota().max_workers(4) is None

    def test_quota_threads_into_the_served_query(self):
        tenants = {"capped": TenantQuota(max_bloom_bits=64,
                                         max_cache_bytes=1 << 20)}
        with running_server(tenants=tenants) as server:
            status, payload, _ = _request(
                server.port, "POST", "/query",
                {"kernel": "tc", "dataset": "sc-ht-mini",
                 "backend": "bloom", "bits": 4096},
                headers={"X-Repro-Tenant": "capped"},
            )
            assert status == 200
            # The response tells the tenant what was degraded...
            assert payload["quota_clamped"]["bits"] == {
                "requested": 4096, "granted": 64,
            }
            # ...and the served result really ran under the granted
            # budget: a 64-bit-per-element Bloom backend, not 4096.
            assert payload["result"]["resolved_class"] != "BitSet"
            # An uncapped tenant with the same request is not clamped.
            status, payload, _ = _request(
                server.port, "POST", "/query",
                {"kernel": "tc", "dataset": "sc-ht-mini",
                 "backend": "bloom", "bits": 4096},
            )
            assert status == 200
            assert "quota_clamped" not in payload
            _, stats, _ = _request(server.port, "GET", "/stats")
            assert stats["tenants"]["capped"]["usage"]["clamped"] == 1
            assert stats["tenants"]["capped"]["quota"]["max_bloom_bits"] == 64

    def test_load_tenants_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({
            "alice": {"max_bloom_bits": 128, "worker_share": 0.5},
        }))
        table = load_tenants(str(path))
        assert table["alice"] == TenantQuota(max_bloom_bits=128,
                                             worker_share=0.5)
        assert load_tenants(None) == {}
        path.write_text(json.dumps({"bob": {"max_gpus": 3}}))
        with pytest.raises(ValueError, match="unknown quota field"):
            load_tenants(str(path))


class TestSuiteJobs:
    def test_job_lifecycle_and_artifact(self, artifact_dir):
        with running_server() as server:
            status, accepted, _ = _request(
                server.port, "POST", "/suite",
                {"smoke": True, "kernels": ["tc"]},
                headers={"X-Repro-Tenant": "team-a"},
            )
            assert status == 202
            assert accepted["poll"] == f"/jobs/{accepted['job']}"
            record = _wait_for_job(server.port, accepted["job"])
            assert record["state"] == "done"
            assert record["schema"] == JOB_SCHEMA
            assert record["tenant"] == "team-a"
            assert record["exact_mismatches"] == 0
            progress = record["progress"]
            assert progress["cells_done"] == progress["cells_total"] > 0
            assert progress["datasets_done"] == 1
            assert progress["current_dataset"] is None
            (path,) = record["artifacts"]
            artifact = json.loads(open(path).read())
            assert artifact["schema"] == "gms-suite/v2"
            assert artifact["dataset"] == "sc-ht-mini"
            # Job listing includes it.
            _, listing, _ = _request(server.port, "GET", "/jobs")
            assert [j["id"] for j in listing["jobs"]] == [accepted["job"]]
            _, stats, _ = _request(server.port, "GET", "/stats")
            assert stats["jobs"]["counts"] == {"done": 1}
            assert stats["tenants"]["team-a"]["usage"]["jobs"] == 1
            assert stats["tenants"]["team-a"]["usage"]["cells"] > 0

    def test_served_suite_is_suite_diff_identical_to_cli(self, artifact_dir):
        """The acceptance gate: HTTP job artifact == direct session run."""
        with MiningSession() as session:
            reference = session.run_plan(ExperimentPlan.smoke())[0]
        with running_server() as server:
            _, accepted, _ = _request(server.port, "POST", "/suite",
                                      {"smoke": True})
            record = _wait_for_job(server.port, accepted["job"])
            assert record["state"] == "done"
            (path,) = record["artifacts"]
            served = json.loads(open(path).read())
        assert diff_payloads(reference, served, semantic=True) == []

    def test_invalid_plans_rejected_at_submission(self, artifact_dir):
        with running_server() as server:
            cases = [
                {"kernels": ["nope"]},
                {"datasets": ["nope"]},
                {"orderings": ["NOPE"]},
                {"datasets": "not-a-list"},
                {"frobnicate": 1},
            ]
            for body in cases:
                status, payload, _ = _request(
                    server.port, "POST", "/suite", body
                )
                assert status == 400, (body, payload)
            # Nothing was accepted, so the store stays empty.
            _, listing, _ = _request(server.port, "GET", "/jobs")
            assert listing["jobs"] == []

    def test_full_job_backlog_answers_429(self, artifact_dir):
        import asyncio
        import threading

        release = threading.Event()
        with running_server(max_pending_jobs=1) as server:
            async def stuck(job, plan):
                # Park the job worker off-loop until the test says so —
                # the submissions below then fill the queue
                # deterministically instead of racing the drain.
                await asyncio.get_event_loop().run_in_executor(
                    None, release.wait
                )

            server._execute_job = stuck
            try:
                _, first, _ = _request(server.port, "POST", "/suite",
                                       {"smoke": True})
                deadline = time.time() + 30
                while server._job_queue.qsize() > 0:   # worker picked it up
                    assert time.time() < deadline
                    time.sleep(0.01)
                status, _, _ = _request(server.port, "POST", "/suite",
                                        {"smoke": True})
                assert status == 202                   # fills the backlog
                status, payload, response = _request(
                    server.port, "POST", "/suite", {"smoke": True}
                )
                assert status == 429
                assert response.getheader("Retry-After") is not None
                assert "backlog" in payload["error"]
            finally:
                release.set()

    def test_jobs_survive_a_server_restart(self, artifact_dir):
        root = str(artifact_dir / "jobs")
        with running_server(job_root=root) as server:
            _, accepted, _ = _request(server.port, "POST", "/suite",
                                      {"smoke": True, "kernels": ["tc"]})
            record = _wait_for_job(server.port, accepted["job"])
            assert record["state"] == "done"
        # New process, same store root: the answer is still there.
        with running_server(job_root=root) as server:
            status, record, _ = _request(
                server.port, "GET", f"/jobs/{accepted['job']}"
            )
            assert status == 200
            assert record["state"] == "done"
            (path,) = record["artifacts"]
            assert json.loads(open(path).read())["dataset"] == "sc-ht-mini"
            # And new ids continue above the hydrated ones.
            _, accepted2, _ = _request(server.port, "POST", "/suite",
                                       {"smoke": True, "kernels": ["tc"]})
            assert accepted2["job"] > accepted["job"]
            _wait_for_job(server.port, accepted2["job"])

    def test_interrupted_jobs_are_marked_on_hydration(self, artifact_dir):
        store = JobStore(str(artifact_dir / "jobs"))
        job = store.create(plan={}, tenant="public",
                           cells_total=4, datasets_total=1)
        job.state = "running"
        store.persist(job)
        # A fresh store over the same root = a restarted server: the
        # abandoned run must read as interrupted, durably.
        reloaded = JobStore(str(artifact_dir / "jobs")).get(job.id)
        assert reloaded.state == "interrupted"
        assert "restarted" in reloaded.error
        on_disk = json.loads(
            (artifact_dir / "jobs" / job.id / "job.json").read_text()
        )
        assert on_disk["state"] == "interrupted"


class TestServeHttpWiring:
    def test_serve_parser_accepts_http_flags(self):
        from repro.platform.serve import build_serve_parser

        ns = build_serve_parser().parse_args([
            "--http", "0", "--host", "0.0.0.0", "--max-inflight", "2",
            "--admission-backlog", "3", "--max-pending-jobs", "1",
            "--job-root", "/tmp/jobs",
        ])
        assert ns.http == 0
        assert ns.host == "0.0.0.0"
        assert ns.max_inflight == 2
        assert ns.admission_backlog == 3
        assert ns.max_pending_jobs == 1
        assert ns.job_root == "/tmp/jobs"

    def test_serve_main_dispatches_to_http(self, monkeypatch):
        calls = {}
        import repro.platform.serve as serve

        def fake_serve_http(ns):
            calls["port"] = ns.http
            return 0

        # serve_main imports serve_http from .http lazily; intercept there.
        import repro.platform.http as http_mod

        monkeypatch.setattr(http_mod, "serve_http", fake_serve_http)
        assert serve.serve_main(["--http", "8123"]) == 0
        assert calls["port"] == 8123

    def test_default_job_root_tracks_artifact_dir(self, artifact_dir):
        with MiningSession() as session:
            server = MiningHTTPServer(session)
            assert server.store.root == str(artifact_dir / "jobs")

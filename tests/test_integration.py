"""End-to-end integration across modules, mirroring the paper's pipeline."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.compress import LogGraph
from repro.core import BitSet, RoaringSet, reset
from repro.graph import build_set_graph, load_dataset, summarize
from repro.learning import louvain, modularity
from repro.mining import (
    bron_kerbosch,
    bk_das,
    core_numbers,
    kclique_count,
    run_bk_variant,
)
from repro.platform import simulated_parallel_seconds
from repro.runtime import PAPIW, StallModel, algorithmic_throughput


def test_full_bk_pipeline_on_registry_dataset():
    """dataset → ADG reorder → BK → throughput metric (the Figure 1 flow)."""
    g = load_dataset("sc-ht-mini")
    res = bron_kerbosch(g, "ADG", BitSet)
    assert res.num_cliques > 0
    tput = algorithmic_throughput(res.num_cliques, res.total_seconds)
    assert tput > 0
    # The parallel simulation returns a shorter time at 16 threads.
    assert simulated_parallel_seconds(res, 16) < res.total_seconds * 1.05


def test_variants_consistent_on_datasets():
    for name in ("gupta3-mini", "usa-roads-mini"):
        g = load_dataset(name)
        counts = {
            run_bk_variant(g, v).num_cliques
            for v in ("BK-DAS", "BK-GMS-ADG", "BK-GMS-ADG-S")
        }
        assert len(counts) == 1


def test_mining_on_compressed_representation():
    """Log(Graph) plugs into the pipeline without changing results."""
    g = load_dataset("sc-ht-mini")
    lg = LogGraph(g, "bitpack")
    assert bron_kerbosch(lg.to_csr(), "DEG", BitSet).num_cliques == \
        bron_kerbosch(g, "DEG", BitSet).num_cliques


def test_set_graph_representations_have_consistent_edges():
    g = load_dataset("antcolony5-mini")
    for cls in (BitSet, RoaringSet):
        sg = build_set_graph(g, cls)
        assert sg.num_edges == g.num_edges
        assert sg.storage_bytes() > 0


def test_papi_instrumented_mining_region():
    """Listing 4's idiom around a mining kernel."""
    reset()
    PAPIW.INIT_PARALLEL("PAPI_MEM_SCY", "PAPI_RES_STL")
    PAPIW.START()
    g = load_dataset("sc-ht-mini")
    bron_kerbosch(g, "ADG", BitSet)
    m = PAPIW.STOP()
    assert m.set_ops > 100
    model = StallModel()
    c1, r1 = model.stalled_cycles(m, 1)
    c32, r32 = model.stalled_cycles(m, 32)
    assert c32 > c1 and r32 > r1


def test_kclique_and_coreness_consistency():
    """k-clique count must vanish above the degeneracy bound + 1."""
    g = load_dataset("usa-roads-mini")
    d = int(core_numbers(g).max())
    assert kclique_count(g, d + 2).count == 0


def test_summary_matches_mining_observables():
    g = load_dataset("antcolony6-mini")
    s = summarize(g, "ant6")
    assert kclique_count(g, 3).count == s.triangles


def test_community_pipeline_on_social_standin():
    g = load_dataset("orkut-mini")
    labels = louvain(g)
    # Holme–Kim stand-ins have weak but clearly positive community
    # structure; Louvain must beat both trivial partitions.
    q = modularity(g, labels)
    assert q > 0.1
    assert q > modularity(g, np.zeros(g.num_nodes, dtype=np.int64))
    assert q > modularity(g, np.arange(g.num_nodes))


def test_das_baseline_equivalent_to_networkx_on_dataset():
    g = load_dataset("sc-ht-mini")
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(range(g.num_nodes))
    expect = sum(1 for _ in nx.find_cliques(G))
    assert bk_das(g).num_cliques == expect

"""Edge-list and npz I/O, including malformed-input failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    build_undirected,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


def test_roundtrip(tmp_path):
    g = build_undirected(5, [(0, 1), (1, 2), (3, 4)])
    path = tmp_path / "g.el"
    write_edge_list(g, path)
    g2 = read_edge_list(path, num_nodes=5)
    assert g2 == g


def test_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("# SNAP header\n% KONECT header\n\n0 1\n1 2\n")
    g = read_edge_list(path)
    assert g.num_nodes == 3
    assert g.num_edges == 2


def test_extra_columns_tolerated(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("0 1 3.5\n1 2 7\n")
    assert read_edge_list(path).num_edges == 2


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.el"
    path.write_text("0\n")
    with pytest.raises(ValueError, match="expected 'u v'"):
        read_edge_list(path)


def test_non_integer_rejected(tmp_path):
    path = tmp_path / "bad.el"
    path.write_text("a b\n")
    with pytest.raises(ValueError, match="non-integer"):
        read_edge_list(path)


def test_negative_id_rejected(tmp_path):
    path = tmp_path / "bad.el"
    path.write_text("-1 2\n")
    with pytest.raises(ValueError, match="negative"):
        read_edge_list(path)


def test_directed_read(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("0 1\n")
    g = read_edge_list(path, directed=True)
    assert g.has_edge(0, 1) and not g.has_edge(1, 0)


def test_npz_roundtrip(tmp_path):
    g = build_undirected(6, [(0, 1), (2, 3), (4, 5)])
    path = tmp_path / "g.npz"
    save_npz(g, path)
    assert load_npz(path) == g


def test_empty_file(tmp_path):
    path = tmp_path / "empty.el"
    path.write_text("")
    g = read_edge_list(path)
    assert g.num_nodes == 0

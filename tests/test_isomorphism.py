"""Subgraph isomorphism: VF2, VF3-Light, Glasgow vs the networkx oracle."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from networkx.algorithms import isomorphism as nxiso

from repro.graph import build_undirected
from repro.isomorphism import (
    connectivity_order,
    glasgow_count,
    rarity_order,
    vf2_count,
    vf2_embeddings,
    vf3light_count,
    vf3light_embeddings,
)
from tests.conftest import random_csr

QUERIES = {
    "path4": nx.path_graph(4),
    "cycle4": nx.cycle_graph(4),
    "triangle": nx.complete_graph(3),
    "star3": nx.star_graph(3),
    "diamond": nx.Graph([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]),
}


def to_csr(G):
    return build_undirected(G.number_of_nodes(), list(G.edges()))


def nx_count(T, Q, induced):
    matcher = nxiso.GraphMatcher(T, Q)
    it = (
        matcher.subgraph_isomorphisms_iter()
        if induced
        else matcher.subgraph_monomorphisms_iter()
    )
    return sum(1 for _ in it)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("qname", sorted(QUERIES))
    @pytest.mark.parametrize("induced", [True, False])
    def test_all_solvers(self, qname, induced):
        T = nx.gnp_random_graph(22, 0.25, seed=42)
        Q = QUERIES[qname]
        tc, qc = to_csr(T), to_csr(Q)
        expect = nx_count(T, Q, induced)
        assert vf2_count(tc, qc, induced=induced) == expect
        assert vf3light_count(tc, qc, induced=induced) == expect
        assert glasgow_count(tc, qc, induced=induced) == expect

    @pytest.mark.parametrize("seed", range(3))
    def test_random_targets(self, seed):
        T = nx.gnp_random_graph(18, 0.3, seed=seed)
        Q = nx.path_graph(4)
        tc, qc = to_csr(T), to_csr(Q)
        expect = nx_count(T, Q, False)
        assert vf2_count(tc, qc, induced=False) == expect
        assert vf3light_count(tc, qc, induced=False) == expect


class TestLabels:
    def test_labeled_counting(self):
        T = nx.gnp_random_graph(16, 0.35, seed=1)
        tl = np.array([v % 3 for v in range(16)])
        Q = nx.path_graph(3)
        ql = np.array([0, 1, 2])
        for v in T.nodes():
            T.nodes[v]["l"] = int(tl[v])
        QG = Q.copy()
        for v in QG.nodes():
            QG.nodes[v]["l"] = int(ql[v])
        matcher = nxiso.GraphMatcher(
            T, QG, node_match=lambda a, b: a["l"] == b["l"]
        )
        expect = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        tc, qc = to_csr(T), to_csr(Q)
        assert vf2_count(tc, qc, induced=False, target_labels=tl,
                         query_labels=ql) == expect
        assert vf3light_count(tc, qc, induced=False, target_labels=tl,
                              query_labels=ql) == expect

    def test_impossible_labels_find_nothing(self):
        T = nx.complete_graph(5)
        tc = to_csr(T)
        qc = to_csr(nx.path_graph(2))
        assert (
            vf2_count(tc, qc, target_labels=np.zeros(5, dtype=int),
                      query_labels=np.array([1, 1])) == 0
        )


class TestMechanics:
    def test_embeddings_are_valid_maps(self):
        T = nx.gnp_random_graph(15, 0.3, seed=2)
        Q = nx.cycle_graph(4)
        tc, qc = to_csr(T), to_csr(Q)
        for mapping in vf2_embeddings(tc, qc, induced=False):
            assert len(set(mapping)) == 4  # injective
            for u, v in Q.edges():
                assert T.has_edge(mapping[u], mapping[v])

    def test_limit(self):
        T = nx.complete_graph(8)
        tc, qc = to_csr(T), to_csr(nx.path_graph(3))
        assert vf2_count(tc, qc, limit=5) == 5

    def test_roots_partition_the_search(self):
        """Work splitting: per-root counts sum to the total (section 6.4)."""
        T = nx.gnp_random_graph(14, 0.35, seed=3)
        Q = nx.path_graph(4)
        tc, qc = to_csr(T), to_csr(Q)
        total = vf3light_count(tc, qc, induced=True)
        split = sum(
            sum(1 for _ in vf3light_embeddings(tc, qc, induced=True, roots=[r]))
            for r in range(14)
        )
        assert split == total

    def test_connectivity_order_property(self):
        qc = to_csr(nx.path_graph(5))
        order = connectivity_order(qc)
        seen = {order[0]}
        for v in order[1:]:
            assert any(u in seen for u in qc.out_neigh(v).tolist())
            seen.add(v)

    def test_rarity_order_is_permutation(self):
        qc = to_csr(nx.cycle_graph(5))
        order = rarity_order(qc, [3, 1, 4, 1, 5])
        assert sorted(order) == list(range(5))

    def test_empty_query_matches_once(self):
        tc = to_csr(nx.path_graph(3))
        qc = build_undirected(0, [])
        assert vf2_count(tc, qc) == 1

    def test_query_larger_than_target(self):
        tc = to_csr(nx.path_graph(3))
        qc = to_csr(nx.complete_graph(5))
        assert vf2_count(tc, qc) == 0
        assert vf3light_count(tc, qc) == 0
        assert glasgow_count(tc, qc) == 0

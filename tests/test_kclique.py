"""k-clique listing/counting and its comparison baselines."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph import build_undirected
from repro.graph import generators as gen
from repro.mining import (
    danisch_kclique_count,
    framework_kclique_count,
    gbbs_kclique_count,
    kclique_count,
    kclique_list,
)
from tests.conftest import random_csr


def nx_kclique_count(G, k):
    return sum(1 for c in nx.enumerate_all_cliques(G) if len(c) == k)


class TestCounts:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    @pytest.mark.parametrize("parallel", ["node", "edge"])
    def test_matches_networkx(self, k, parallel):
        csr, G = random_csr(35, 190, 11)
        assert kclique_count(csr, k, "DGR", parallel).count == nx_kclique_count(G, k)

    @pytest.mark.parametrize("ordering", ["DEG", "DGR", "ADG", "ID"])
    def test_ordering_invariant(self, ordering):
        csr, G = random_csr(35, 190, 12)
        assert kclique_count(csr, 4, ordering).count == nx_kclique_count(G, 4)

    def test_k3_equals_triangles(self):
        csr, G = random_csr(40, 200, 13)
        assert kclique_count(csr, 3).count == sum(nx.triangles(G).values()) // 3

    def test_complete_graph_closed_form(self):
        from math import comb

        n = 9
        g = build_undirected(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        for k in (3, 4, 5):
            assert kclique_count(g, k).count == comb(n, k)

    def test_invalid_k(self):
        csr, _ = random_csr(5, 5, 1)
        with pytest.raises(ValueError):
            kclique_count(csr, 1)
        with pytest.raises(ValueError):
            kclique_count(csr, 3, parallel="bogus")

    def test_no_cliques_graph(self):
        g = gen.road_grid(6, 6)
        assert kclique_count(g, 3).count == 0


class TestList:
    def test_list_matches_count_and_dedupes(self):
        csr, G = random_csr(30, 160, 14)
        lst = kclique_list(csr, 4)
        assert len(lst) == nx_kclique_count(G, 4)
        assert len({tuple(c) for c in lst}) == len(lst)
        for c in lst:
            for i, u in enumerate(c):
                for v in c[i + 1 :]:
                    assert G.has_edge(u, v)


class TestBaselines:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_all_baselines_agree(self, k):
        csr, G = random_csr(30, 170, 15)
        expect = nx_kclique_count(G, k)
        assert gbbs_kclique_count(csr, k).count == expect
        assert danisch_kclique_count(csr, k).count == expect
        assert framework_kclique_count(csr, k).count == expect

    def test_framework_guard(self):
        csr, _ = random_csr(30, 170, 16)
        with pytest.raises(MemoryError):
            framework_kclique_count(csr, 4, max_embeddings=1)

    def test_task_costs_recorded(self):
        csr, _ = random_csr(30, 170, 17)
        res = kclique_count(csr, 4, parallel="edge")
        assert len(res.task_costs) == csr.num_edges
        assert res.throughput() >= 0

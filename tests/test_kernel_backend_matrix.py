"""Kernel × backend equivalence matrix and the materialization layer.

The set-centric unification's contract, pinned registry-driven (classes
come from :func:`repro.core.registered_set_classes` via the conftest
fixtures, so newly registered backends join automatically):

1. **Exact equivalence** — every refactored mining kernel returns the
   *identical* count under every exact set representation (SortedSet /
   BitSet / Roaring / Hash / Compressed): the kernels speak only the
   ``SetBase`` algebra, so the representation cannot change the answer.
2. **Bounded error** — under the approximate backends (``"bloom"`` /
   ``"kmv"`` at their default budgets) the same unmodified kernels return
   estimates within a measured relative-error envelope.
3. **Cache invariance** — the :class:`~repro.graph.MaterializationCache`
   layer returns shared objects on hits and never changes any kernel's
   output.
4. **Incremental pivot sketches** — sketch-pivot Bron–Kerbosch builds its
   ``P`` sketch once per outer vertex and maintains it incrementally; the
   ``sketch_builds`` op counter must scale with ``n``, not with the number
   of recursive calls (the op-counter regression for the ROADMAP
   follow-up).
"""

from __future__ import annotations

import warnings

import networkx as nx
import numpy as np
import pytest

from repro.core import BitSet, SortedSet
from repro.core.counters import COUNTERS, reset as reset_counters
from repro.graph import (
    MaterializationCache,
    build_oriented_set_graph,
    build_set_graph,
    orient_by_rank,
)
from repro.mining import (
    bron_kerbosch,
    danisch_kclique_count,
    gbbs_kclique_count,
    kclique_count,
    kclique_count_sets,
    kclique_list,
    kclique_star_count,
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)
from repro.preprocess.ordering import compute_ordering
from tests.conftest import APPROX_SET_CLASSES, random_csr

#: The refactored kernels, each behind a uniform (graph, cls, cache) -> int
#: runner.  This is the kernel axis of the equivalence matrix; the backend
#: axis comes from the registry fixtures.
KERNEL_RUNNERS = {
    "tc-node": lambda g, cls, cache: triangle_count_node_iterator(
        g, set_cls=cls, cache=cache),
    "tc-merge": lambda g, cls, cache: triangle_count_rank_merge(
        g, set_cls=cls, cache=cache),
    "4clique-edge": lambda g, cls, cache: kclique_count(
        g, 4, "DGR", "edge", set_cls=cls, cache=cache).count,
    "4clique-node": lambda g, cls, cache: kclique_count(
        g, 4, "DGR", "node", set_cls=cls, cache=cache).count,
    "5clique-adg": lambda g, cls, cache: kclique_count(
        g, 5, "ADG", "edge", set_cls=cls, cache=cache).count,
    "kstar": lambda g, cls, cache: kclique_star_count(
        g, 3, set_cls=cls, cache=cache),
    "gbbs": lambda g, cls, cache: gbbs_kclique_count(
        g, 4, set_cls=cls, cache=cache).count,
    "danisch": lambda g, cls, cache: danisch_kclique_count(
        g, 4, set_cls=cls, cache=cache).count,
    "kclique-sets": lambda g, cls, cache: kclique_count_sets(
        g, 4, cls, "DGR", cache=cache),
}


@pytest.fixture(scope="module")
def matrix_graph():
    csr, G = random_csr(40, 220, 23)
    return csr, G


@pytest.fixture(scope="module")
def reference_counts(matrix_graph):
    """SortedSet is the reference backend; every exact class must match."""
    csr, _ = matrix_graph
    cache = MaterializationCache()
    return {
        name: runner(csr, SortedSet, cache)
        for name, runner in KERNEL_RUNNERS.items()
    }


class TestExactEquivalence:
    @pytest.mark.parametrize("kernel", sorted(KERNEL_RUNNERS))
    def test_identical_counts_across_exact_backends(
        self, kernel, set_cls, matrix_graph, reference_counts
    ):
        csr, _ = matrix_graph
        got = KERNEL_RUNNERS[kernel](csr, set_cls, MaterializationCache())
        assert got == reference_counts[kernel]

    def test_reference_agrees_with_networkx(self, matrix_graph):
        csr, G = matrix_graph
        cache = MaterializationCache()
        expect_tc = sum(nx.triangles(G).values()) // 3
        assert KERNEL_RUNNERS["tc-node"](csr, SortedSet, cache) == expect_tc
        assert KERNEL_RUNNERS["tc-merge"](csr, SortedSet, cache) == expect_tc
        expect_4c = sum(
            1 for c in nx.enumerate_all_cliques(G) if len(c) == 4
        )
        for kernel in ("4clique-edge", "4clique-node", "gbbs", "danisch",
                       "kclique-sets"):
            assert KERNEL_RUNNERS[kernel](csr, SortedSet, cache) == expect_4c

    def test_no_raw_numpy_set_ops_in_algorithm_layers(self):
        """The acceptance criterion, pinned via the GMS001 analyzer rule
        (alias-aware, so renamed imports cannot evade it — the weakness
        of the string grep this replaces): candidate-set work in
        ``mining/``, ``learning/``, and ``optimization/`` goes through
        SetBase, never through numpy's raw array set routines.  The
        ``mining/`` layer must be *unconditionally* clean; the widened
        layers may only carry the explicitly grandfathered findings of
        the committed baseline."""
        import pathlib

        import repro.learning
        import repro.mining
        import repro.optimization
        from repro.analysis import Baseline, analyze_paths
        from repro.analysis.cli import DEFAULT_BASELINE_NAME, find_repo_root

        layers = {
            module.__name__.rsplit(".", 1)[-1]:
                pathlib.Path(module.__file__).parent
            for module in (repro.mining, repro.learning, repro.optimization)
        }
        root = find_repo_root(pathlib.Path(__file__).resolve().parent)
        findings = analyze_paths(sorted(layers.values()), root,
                                 select=["GMS001"])
        assert [f for f in findings if "/mining/" in f.path] == []
        baseline = Baseline.load(root / DEFAULT_BASELINE_NAME)
        new, grandfathered = baseline.partition(findings)
        assert new == [], (
            "new raw numpy set-op usage in the algorithm layers:\n"
            + "\n".join(f.format_text() for f in new)
        )
        # The grandfathered debt is pinned exactly: paying it down must
        # shrink the baseline file, not silently leave a stale entry.
        assert sorted({f.path for f in grandfathered}) == [
            "src/repro/learning/jarvis_patrick.py",
        ]


class TestBoundedErrorUnderSketches:
    @pytest.mark.parametrize("kernel", sorted(KERNEL_RUNNERS))
    def test_default_budget_estimates_stay_close(
        self, kernel, approx_set_cls, matrix_graph, reference_counts
    ):
        """Default sketch budgets are rich at this scale: estimates must
        land within a 10% envelope of the exact reference (and the
        hashing is deterministic, so this is a seeded statistical test,
        not a flaky one)."""
        csr, _ = matrix_graph
        got = KERNEL_RUNNERS[kernel](csr, approx_set_cls,
                                     MaterializationCache())
        exact = reference_counts[kernel]
        assert abs(got - exact) / max(exact, 1) <= 0.10

    def test_lean_bloom_still_bounded_by_candidates(self, matrix_graph):
        """Bloom intersects yield supersets: a lean budget may over-count,
        but the 4-clique estimate can never exceed the count over full
        neighborhoods (every candidate still comes from a real arc)."""
        from repro.approx import bloom_set_class

        csr, _ = matrix_graph
        lean = bloom_set_class(2, 2, min_bits=64, name="LeanMatrixBloom")
        est = kclique_count_sets(csr, 4, lean, "DGR")
        exact = kclique_count(csr, 4, "DGR").count
        assert est >= 0
        # Reconciliation bounds the compounding: one estimator level only.
        rec = kclique_count_sets(csr, 4, lean, "DGR", reconcile=True)
        assert abs(rec - exact) <= abs(est - exact) + max(1, exact // 10)


class TestMaterializationCache:
    def test_set_graph_hit_returns_same_object(self, matrix_graph, set_cls):
        csr, _ = matrix_graph
        cache = MaterializationCache()
        first = cache.set_graph(csr, set_cls)
        second = cache.set_graph(csr, set_cls)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_oriented_hit_returns_same_objects(self, matrix_graph):
        csr, _ = matrix_graph
        cache = MaterializationCache()
        o1, d1 = cache.oriented(csr, BitSet, "DGR")
        o2, d2 = cache.oriented(csr, BitSet, "DGR")
        assert o1 is o2 and d1 is d2

    def test_distinct_backends_and_orderings_are_distinct_entries(
        self, matrix_graph
    ):
        csr, _ = matrix_graph
        cache = MaterializationCache()
        _, d_bit = cache.oriented(csr, BitSet, "DGR")
        _, d_sorted = cache.oriented(csr, SortedSet, "DGR")
        _, d_adg = cache.oriented(csr, BitSet, "ADG", eps=0.1)
        assert d_bit is not d_sorted and d_bit is not d_adg
        assert cache.stats()["oriented"] == 3

    def test_oriented_matches_two_step_materialization(self, matrix_graph):
        csr, _ = matrix_graph
        rank = compute_ordering(csr, "DGR").rank
        fused = build_oriented_set_graph(csr, rank, SortedSet)
        two_step = build_set_graph(orient_by_rank(csr, rank), SortedSet)
        assert fused.num_nodes == two_step.num_nodes
        assert fused.directed and two_step.directed
        for v in fused.vertices():
            assert np.array_equal(
                fused[v].to_array(), two_step[v].to_array()
            )

    def test_kernel_results_invariant_under_shared_cache(
        self, matrix_graph, set_cls
    ):
        csr, _ = matrix_graph
        shared = MaterializationCache()
        for name, runner in KERNEL_RUNNERS.items():
            fresh_value = runner(csr, set_cls, MaterializationCache())
            shared_value = runner(csr, set_cls, shared)
            assert fresh_value == shared_value, name
        # The shared run must actually have reused materializations.
        assert shared.hits > 0

    def test_clear_resets_everything(self, matrix_graph):
        csr, _ = matrix_graph
        cache = MaterializationCache()
        cache.oriented(csr, BitSet, "DGR")
        cache.clear()
        stats = cache.stats()
        assert stats == {"hits": 0, "misses": 0, "insertions": 0,
                         "evictions": 0, "orderings": 0, "set_graphs": 0,
                         "oriented": 0, "resident_bytes": 0,
                         "budget_bytes": None}


class TestIncrementalPivotSketch:
    """Op-counter regression: the ``P`` sketch is never rebuilt per call."""

    @pytest.mark.parametrize(
        "pivot_cls", APPROX_SET_CLASSES, ids=lambda c: c.__name__
    )
    def test_sketch_builds_scale_with_vertices_not_calls(self, pivot_cls):
        csr, _ = random_csr(40, 300, 3)
        reset_counters()
        res = bron_kerbosch(csr, "DGR", BitSet, pivot_set_cls=pivot_cls)
        builds = COUNTERS.sketch_builds
        # The recursion is deep enough for the distinction to be sharp.
        assert res.recursive_calls > 3 * csr.num_nodes
        # One build per neighborhood sketch + at most one per outer vertex
        # — the pre-refactor code paid one additional build per recursive
        # call (n + recursive_calls total), which this ceiling excludes.
        assert builds <= 2 * csr.num_nodes
        assert builds < res.recursive_calls

    def test_output_still_identical_with_maintained_sketch(self):
        csr, _ = random_csr(30, 200, 9)
        exact = bron_kerbosch(csr, "DGR", BitSet, collect=True)
        for pivot_cls in APPROX_SET_CLASSES:
            sketch = bron_kerbosch(csr, "DGR", BitSet, collect=True,
                                   pivot_set_cls=pivot_cls)
            assert (
                sorted(tuple(sorted(c)) for c in sketch.cliques)
                == sorted(tuple(sorted(c)) for c in exact.cliques)
            )


class TestBloomFprSizing:
    """--bloom-fpr: the operator states accuracy, the platform sizes bits."""

    def test_bits_for_fpr_inverts_the_fill_model(self):
        from repro.approx.estimators import (
            bloom_bits_for_fpr,
            bloom_false_positive_rate,
        )

        for n, fpr, k in ((10, 0.01, 4), (100, 0.05, 4), (1000, 0.001, 6)):
            m = bloom_bits_for_fpr(n, fpr, k)
            assert bloom_false_positive_rate(n, m, k) <= fpr
            # Minimality: one-eighth the bits must overshoot the target.
            assert bloom_false_positive_rate(n, max(1, m // 8), k) > fpr

    def test_bits_for_fpr_rejects_bad_targets(self):
        from repro.approx.estimators import bloom_bits_for_fpr

        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                bloom_bits_for_fpr(10, bad, 4)
        with pytest.raises(ValueError):
            bloom_bits_for_fpr(0, 0.01, 4)

    def test_cli_flag_resolves_to_shared_budget_meeting_target(self):
        from repro.approx.estimators import bloom_false_positive_rate
        from repro.platform.cli import parse_args

        args = parse_args(["--set-class", "bloom", "--bloom-fpr", "0.02"])
        assert args.bloom_fpr == 0.02
        csr, _ = random_csr(60, 300, 4)
        cls = args.resolve_set_class_for_graph(csr)
        assert cls.SHARED_BITS > 0
        avg = int(round(2 * csr.num_edges / csr.num_nodes))
        assert bloom_false_positive_rate(
            avg, cls.SHARED_BITS, cls.NUM_HASHES
        ) <= 0.02

    def test_fpr_takes_precedence_over_explicit_budgets(self):
        from repro.platform.cli import resolve_set_class

        sized = resolve_set_class(
            "bloom", bloom_fpr=0.01, avg_set_size=12.0, num_sets=100,
            bloom_shared_bits=64 * 100, bloom_bits=4,
        )
        explicit = resolve_set_class(
            "bloom", bloom_shared_bits=64 * 100, num_sets=100,
        )
        assert sized.SHARED_BITS != explicit.SHARED_BITS

    def test_shared_budget_floor_warns_explicitly(self):
        from repro.approx import shared_bloom_set_class

        with pytest.warns(UserWarning, match="floor"):
            shared_bloom_set_class(1024, 1000)  # ~1 bit/set: floored
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            shared_bloom_set_class(1 << 20, 1000)  # rich budget: silent

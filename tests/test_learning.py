"""Vertex similarity, link prediction, clustering, community detection."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_undirected
from repro.learning import (
    SIMILARITY_MEASURES,
    evaluate_scheme,
    jarvis_patrick,
    label_propagation,
    louvain,
    modularity,
    predict_links,
    score_pairs,
    similarity,
    similarity_all_pairs,
    sparsify,
)
from tests.conftest import random_csr


class TestSimilarity:
    @pytest.fixture(scope="class")
    def pair_graph(self):
        return random_csr(40, 160, 21)

    def test_jaccard_matches_networkx(self, pair_graph):
        csr, G = pair_graph
        pairs = [(0, 1), (2, 3), (10, 30), (5, 5)]
        for u, v, s in nx.jaccard_coefficient(G, pairs):
            assert abs(similarity(csr, u, v, "jaccard") - s) < 1e-12

    def test_adamic_adar_matches_networkx(self, pair_graph):
        csr, G = pair_graph
        for u, v, s in nx.adamic_adar_index(G, [(0, 1), (4, 9)]):
            assert abs(similarity(csr, u, v, "adamic_adar") - s) < 1e-9

    def test_resource_allocation_matches_networkx(self, pair_graph):
        csr, G = pair_graph
        for u, v, s in nx.resource_allocation_index(G, [(0, 1), (4, 9)]):
            assert abs(similarity(csr, u, v, "resource_allocation") - s) < 1e-9

    def test_preferential_attachment_matches_networkx(self, pair_graph):
        csr, G = pair_graph
        for u, v, s in nx.preferential_attachment(G, [(0, 1), (4, 9)]):
            assert similarity(csr, u, v, "preferential_attachment") == s

    def test_common_and_total_neighbors(self, pair_graph):
        csr, G = pair_graph
        cn = len(list(nx.common_neighbors(G, 0, 1)))
        assert similarity(csr, 0, 1, "common_neighbors") == cn
        assert similarity(csr, 0, 1, "total_neighbors") == (
            G.degree(0) + G.degree(1) - cn
        )

    def test_overlap_bounds(self, pair_graph):
        csr, _ = pair_graph
        val = similarity(csr, 0, 1, "overlap")
        assert 0.0 <= val <= 1.0

    def test_unknown_measure(self, pair_graph):
        csr, _ = pair_graph
        with pytest.raises(KeyError, match="unknown measure"):
            similarity(csr, 0, 1, "cosine-nope")

    def test_galloping_equals_merge_everywhere(self, pair_graph):
        csr, _ = pair_graph
        for measure in SIMILARITY_MEASURES:
            a = similarity_all_pairs(csr, measure, "merge")
            b = similarity_all_pairs(csr, measure, "galloping")
            assert a == b

    def test_score_pairs_vectorized_driver(self, pair_graph):
        csr, _ = pair_graph
        pairs = [(0, 1), (2, 3)]
        scores = score_pairs(csr, pairs, "jaccard")
        assert len(scores) == 2
        assert scores[0] == similarity(csr, 0, 1, "jaccard")


class TestLinkPrediction:
    def test_sparsify_partition_invariants(self):
        """§6.7: E_sparse ∪ E_rndm = E and E_sparse ∩ E_rndm = ∅."""
        csr, _ = random_csr(40, 200, 22)
        sparse, removed = sparsify(csr, 0.2, seed=1)
        original = {tuple(e) for e in csr.edge_array().tolist()}
        kept = {tuple(e) for e in sparse.edge_array().tolist()}
        assert kept | removed == original
        assert kept & removed == set()

    def test_sparsify_fraction_validated(self):
        csr, _ = random_csr(10, 20, 23)
        with pytest.raises(ValueError):
            sparsify(csr, 0.0)
        with pytest.raises(ValueError):
            sparsify(csr, 1.0)

    def test_predictions_are_non_edges(self):
        csr, _ = random_csr(40, 200, 24)
        sparse, _ = sparsify(csr, 0.15, seed=2)
        for u, v, _score in predict_links(sparse, 20):
            assert not sparse.has_edge(u, v)

    def test_beats_random_on_community_graph(self):
        G = nx.planted_partition_graph(4, 25, 0.55, 0.01, seed=3)
        csr = build_undirected(100, list(G.edges()))
        res = evaluate_scheme(csr, "jaccard", fraction=0.1, seed=1)
        non_edges = 100 * 99 / 2 - csr.num_edges
        random_rate = res.removed / non_edges
        assert res.effectiveness > 3 * random_rate
        assert 0.0 <= res.effectiveness <= 1.0

    def test_unknown_measure(self):
        csr, _ = random_csr(10, 30, 25)
        with pytest.raises(KeyError):
            evaluate_scheme(csr, "nope")


class TestCommunities:
    @pytest.fixture(scope="class")
    def planted(self):
        G = nx.planted_partition_graph(4, 20, 0.6, 0.02, seed=5)
        return build_undirected(80, list(G.edges())), G

    def test_louvain_modularity_positive(self, planted):
        csr, _ = planted
        labels = louvain(csr)
        assert modularity(csr, labels) > 0.4

    def test_louvain_recovers_planted_blocks(self, planted):
        csr, _ = planted
        labels = louvain(csr)
        # Majority of each planted block shares a label.
        agree = 0
        for b in range(4):
            block = labels[b * 20 : (b + 1) * 20]
            agree += np.bincount(block).max()
        assert agree >= 0.8 * 80

    def test_label_propagation_converges(self, planted):
        csr, _ = planted
        labels = label_propagation(csr, seed=1)
        assert len(labels) == 80
        assert modularity(csr, labels) > 0.3

    def test_jarvis_patrick_separates_components(self):
        # Two disjoint cliques must never merge.
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i + 5, j + 5) for i in range(5) for j in range(i + 1, 5)]
        csr = build_undirected(10, edges)
        labels = jarvis_patrick(csr, k=4, k_min=1)
        assert labels[0] == labels[4]
        assert labels[5] == labels[9]
        assert labels[0] != labels[5]

    def test_modularity_of_trivial_partitions(self, planted):
        csr, _ = planted
        one = np.zeros(80, dtype=np.int64)
        assert abs(modularity(csr, one)) < 0.3  # single block near 0
        singletons = np.arange(80)
        assert modularity(csr, singletons) < 0.0

    def test_empty_graph(self):
        assert len(louvain(build_undirected(0, []))) == 0

"""Integration coverage of ``repro lint``: the repo itself, the CLI,
the baseline workflow, and the ``gms-lint/v1`` artifact contract.

The headline test is the self-audit: the repository must be clean under
the default rule pack modulo the committed baseline — that is the
acceptance criterion of the analyzer PR, and from now on the regression
gate for every invariant the rules encode.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths
from repro.analysis.cli import DEFAULT_BASELINE_NAME, find_repo_root, main

REPO_ROOT = find_repo_root(Path(__file__).resolve().parent)
SRC = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def repo_findings():
    return analyze_paths([SRC], REPO_ROOT)


class TestRepoSelfAudit:
    def test_repo_clean_modulo_committed_baseline(self, repo_findings):
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        new, _ = baseline.partition(repo_findings)
        assert new == [], (
            "new lint findings:\n"
            + "\n".join(f.format_text() for f in new)
        )

    def test_committed_baseline_has_no_stale_entries(self, repo_findings):
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        assert baseline.stale_entries(repo_findings) == []

    def test_known_grandfathered_debt_is_exact(self, repo_findings):
        # The whole baseline today: one raw intersect1d in the k-NN
        # shared-neighbor count.  Fixing it must flow through here.
        assert [(f.rule, f.path) for f in repo_findings] == [
            ("GMS001", "src/repro/learning/jarvis_patrick.py"),
        ]

    def test_cli_entry_point_exits_zero_on_repo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK: 0 new finding(s)" in proc.stdout


class TestArtifactDeterminism:
    def run_json(self, tmp_path, name, extra=()):
        out = tmp_path / name
        code = main(["--format", "json", "--output", str(out),
                     "--root", str(REPO_ROOT), str(SRC), *extra])
        return code, json.loads(out.read_text())

    def test_schema_and_stability_across_runs(self, tmp_path, capsys):
        code1, first = self.run_json(tmp_path, "a.json")
        code2, second = self.run_json(tmp_path, "b.json")
        capsys.readouterr()
        assert code1 == code2 == 0
        assert first == second  # byte-identical reruns
        assert first["schema"] == "gms-lint/v1"
        assert first["ok"] is True
        assert first["counts"]["new"] == 0
        assert first["counts"]["baselined"] == len(
            [f for f in first["findings"] if f["baselined"]]
        )

    def test_paths_are_repo_relative_posix_and_sorted(self, tmp_path,
                                                      capsys):
        _, payload = self.run_json(tmp_path, "c.json")
        capsys.readouterr()
        keys = [(f["path"], f["line"], f["col"], f["rule"])
                for f in payload["findings"]]
        assert keys == sorted(keys)
        for finding in payload["findings"]:
            assert not Path(finding["path"]).is_absolute()
            assert "\\" not in finding["path"]
        assert payload["paths"] == ["src/repro"]

    def test_rule_selection_reflected_in_artifact(self, tmp_path, capsys):
        _, payload = self.run_json(tmp_path, "d.json",
                                   extra=["--select", "GMS004,GMS003"])
        capsys.readouterr()
        assert payload["selected"] == ["GMS003", "GMS004"]
        assert payload["findings"] == []


class TestCLIWorkflow:
    def write_bad_tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro" / "mining"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "bad.py").write_text(
            "import numpy as np\n\n\n"
            "def shrink(a, b):\n"
            "    return np.intersect1d(a, b)\n"
        )
        return tmp_path

    def test_exit_one_on_new_findings(self, tmp_path, capsys):
        root = self.write_bad_tree(tmp_path)
        code = main(["--root", str(root), str(root / "src" / "repro")])
        out = capsys.readouterr().out
        assert code == 1
        assert "GMS001" in out
        assert "src/repro/mining/bad.py:5" in out

    def test_write_baseline_then_clean_then_stale(self, tmp_path, capsys):
        root = self.write_bad_tree(tmp_path)
        target = str(root / "src" / "repro")
        # 1. Grandfather the finding.
        assert main(["--root", str(root), "--write-baseline", target]) == 0
        # 2. The gate is green with the baseline...
        assert main(["--root", str(root), target]) == 0
        # ...but --no-baseline still shows the debt.
        assert main(["--root", str(root), "--no-baseline", target]) == 1
        capsys.readouterr()
        # 3. Pay the debt: the entry goes stale (reported, not fatal).
        (root / "src" / "repro" / "mining" / "bad.py").write_text(
            "def shrink(a, b):\n    return a.intersect(b)\n"
        )
        assert main(["--root", str(root), target]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_ignore_drops_a_rule(self, tmp_path, capsys):
        root = self.write_bad_tree(tmp_path)
        code = main(["--root", str(root), "--ignore", "GMS001",
                     str(root / "src" / "repro")])
        capsys.readouterr()
        assert code == 0

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("GMS001", "GMS002", "GMS003", "GMS004", "GMS005",
                        "GMS006"):
            assert rule_id in out

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        code = main(["--root", str(tmp_path),
                     str(tmp_path / "does-not-exist")])
        assert code == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_baseline_schema_is_an_error(self, tmp_path, capsys):
        root = self.write_bad_tree(tmp_path)
        bad = root / DEFAULT_BASELINE_NAME
        bad.write_text('{"schema": "bogus/v9", "entries": []}')
        code = main(["--root", str(root), str(root / "src" / "repro")])
        assert code == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_duplicate_findings_need_duplicate_entries(self, tmp_path,
                                                       capsys):
        root = self.write_bad_tree(tmp_path)
        target = str(root / "src" / "repro")
        assert main(["--root", str(root), "--write-baseline", target]) == 0
        # A second copy of the same violation must gate as NEW.
        (root / "src" / "repro" / "mining" / "bad.py").write_text(
            "import numpy as np\n\n\n"
            "def shrink(a, b):\n"
            "    return np.intersect1d(a, b)\n\n\n"
            "def shrink2(a, b):\n"
            "    return np.intersect1d(a, b)\n"
        )
        capsys.readouterr()
        assert main(["--root", str(root), target]) == 1

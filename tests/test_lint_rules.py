"""Fixture-level coverage of the ``repro lint`` rule pack.

Every rule gets the same trio: a known-bad snippet that must fire with
the right rule id on the right line, a known-good snippet that must stay
clean, and an inline-suppression case that must be honored.  The
snippets run through :func:`repro.analysis.analyze_source` with a
repo-shaped pretend path, because several rules scope on the layer the
file lives in.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_source, registered_rules


def run(source: str, relpath: str, rule: str):
    return analyze_source(textwrap.dedent(source), relpath, select=[rule])


def lines(findings):
    return [f.line for f in findings]


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert sorted(registered_rules()) == [
            "GMS001", "GMS002", "GMS003", "GMS004", "GMS005", "GMS006",
        ]

    def test_rules_carry_titles(self):
        for rule in registered_rules().values():
            assert rule.title

    def test_unknown_rule_id_rejected(self):
        from repro.analysis import LintError

        with pytest.raises(LintError, match="GMS999"):
            analyze_source("x = 1", "src/repro/mining/x.py",
                           select=["GMS999"])


class TestGMS001SetPurity:
    BAD = """
        import numpy as np
        from numpy import setdiff1d as sd

        def shrink(cands, neigh):
            kept = np.intersect1d(cands, neigh, assume_unique=True)
            return sd(kept, neigh)
    """

    def test_flags_direct_and_aliased_calls(self):
        findings = run(self.BAD, "src/repro/mining/bad.py", "GMS001")
        assert [(f.rule, f.line) for f in findings] == [
            ("GMS001", 6), ("GMS001", 7),
        ]

    def test_alias_cannot_evade(self):
        source = """
            import numpy as secretly_numpy

            def shrink(a, b):
                return secretly_numpy.isin(a, b)
        """
        findings = run(source, "src/repro/learning/bad.py", "GMS001")
        assert lines(findings) == [5]

    def test_union_idiom_flagged(self):
        source = """
            import numpy as np

            def union(a, b):
                return np.unique(np.concatenate([a, b]))
        """
        findings = run(source, "src/repro/optimization/bad.py", "GMS001")
        assert lines(findings) == [5]

    def test_out_of_scope_layers_clean(self):
        # core/ *implements* the algebra: the same source is fine there.
        findings = run(self.BAD, "src/repro/core/impl.py", "GMS001")
        assert findings == []

    def test_clean_setbase_usage_passes(self):
        source = """
            def shrink(cands, neigh_set):
                return cands.intersect(neigh_set)
        """
        assert run(source, "src/repro/mining/good.py", "GMS001") == []

    def test_inline_suppression_honored(self):
        source = """
            import numpy as np

            def shrink(a, b):
                return np.intersect1d(a, b)  # gms: ignore[GMS001]
        """
        assert run(source, "src/repro/mining/sup.py", "GMS001") == []


class TestGMS002CounterDiscipline:
    def test_unaccounted_op_method_flagged(self):
        source = """
            import numpy as np
            from repro.core.interface import SetBase

            class Rogue(SetBase):
                def intersect(self, other):
                    return Rogue(np.intersect1d(self._d, other._d))

                def contains(self, element):
                    return element in self._d
        """
        findings = run(source, "src/repro/core/rogue.py", "GMS002")
        assert [(f.rule, f.line) for f in findings] == [
            ("GMS002", 6), ("GMS002", 9),
        ]
        assert "Rogue.intersect" in findings[0].message

    def test_counters_or_delegation_pass(self):
        source = """
            from repro.core.counters import COUNTERS
            from repro.core.interface import SetBase

            class Polite(SetBase):
                def intersect(self, other):
                    COUNTERS.record_bulk(len(self._d) + len(other._d), 0)
                    return self._d

                def union(self, other):
                    return self._impl.union(other)  # delegation

                def contains(self, element):
                    COUNTERS.record_point()
                    return element in self._d

                def cardinality(self):
                    return len(self._d)  # not an op method: exempt
        """
        assert run(source, "src/repro/core/polite.py", "GMS002") == []

    def test_aliased_counters_import_recognized(self):
        source = """
            from repro.core import counters as _counters
            from repro.core.interface import SetBase

            class Aliased(SetBase):
                def add(self, element):
                    _counters.COUNTERS.record_point()
                    self._d.add(element)
        """
        assert run(source, "src/repro/core/aliased.py", "GMS002") == []

    def test_module_helper_with_counters_passes(self):
        source = """
            from repro.core.counters import COUNTERS
            from repro.core.interface import SetBase

            def _kernel(a, b):
                COUNTERS.record_bulk(len(a) + len(b), 0)
                return a

            class Helper(SetBase):
                def intersect(self, other):
                    return Helper(_kernel(self._d, other._d))
        """
        assert run(source, "src/repro/core/helper.py", "GMS002") == []

    def test_abstract_bodies_exempt(self):
        source = """
            from repro.core.interface import SetBase

            class Iface(SetBase):
                def intersect(self, other):
                    \"\"\"Subclasses implement.\"\"\"

                def union(self, other):
                    raise NotImplementedError
        """
        assert run(source, "src/repro/core/iface.py", "GMS002") == []

    def test_transitive_local_subclass_checked(self):
        source = """
            from repro.core.interface import SetBase

            class Mid(SetBase):
                pass

            class Leaf(Mid):
                def remove(self, element):
                    self._d.discard(element)
        """
        findings = run(source, "src/repro/core/leaf.py", "GMS002")
        assert lines(findings) == [8]

    def test_non_setbase_class_ignored(self):
        source = """
            class Plain:
                def intersect(self, other):
                    return [x for x in self.items if x in other.items]
        """
        assert run(source, "src/repro/core/plain.py", "GMS002") == []


class TestGMS003ResourceLifecycle:
    def test_orphan_creation_flagged(self):
        source = """
            from multiprocessing import shared_memory

            def leak(nbytes):
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                return seg.name
        """
        findings = run(source, "src/repro/platform/leak.py", "GMS003")
        assert [(f.rule, f.line) for f in findings] == [("GMS003", 5)]
        assert "SharedMemory" in findings[0].message

    def test_try_finally_release_passes(self):
        source = """
            from multiprocessing import shared_memory

            def careful(nbytes):
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                try:
                    return bytes(seg.buf)
                finally:
                    seg.close()
                    seg.unlink()
        """
        assert run(source, "src/repro/platform/ok.py", "GMS003") == []

    def test_with_statement_passes(self):
        source = """
            from contextlib import closing
            from multiprocessing import shared_memory

            def scoped(nbytes):
                with shared_memory.SharedMemory(create=True,
                                                size=nbytes) as seg:
                    return bytes(seg.buf)

            def wrapped(nbytes):
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                with closing(seg):
                    return bytes(seg.buf)
        """
        assert run(source, "src/repro/platform/ok2.py", "GMS003") == []

    def test_ownership_transfer_by_return_passes(self):
        source = """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
        """
        assert run(source, "src/repro/platform/ok3.py", "GMS003") == []

    def test_owner_class_slot_passes(self):
        source = """
            from multiprocessing import shared_memory

            class Owner:
                def __init__(self, nbytes):
                    self._seg = shared_memory.SharedMemory(
                        create=True, size=nbytes)

                def close(self):
                    self._seg.close()
                    self._seg.unlink()
        """
        assert run(source, "src/repro/platform/owner.py", "GMS003") == []

    def test_finalizer_registration_passes(self):
        source = """
            import weakref
            from multiprocessing import shared_memory

            def backstopped(owner, nbytes):
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                weakref.finalize(owner, seg.unlink)
                return seg.name
        """
        assert run(source, "src/repro/platform/fin.py", "GMS003") == []

    def test_segment_exporter_tracked_too(self):
        source = """
            from repro.platform.shm import SegmentExporter

            def orphan_exporter():
                exporter = SegmentExporter()
                exporter.export_array(None)
        """
        findings = run(source, "src/repro/platform/exp.py", "GMS003")
        assert lines(findings) == [5]

    def test_inline_suppression_honored(self):
        source = """
            from multiprocessing import shared_memory

            def intentional(nbytes):
                seg = shared_memory.SharedMemory(  # gms: ignore[GMS003]
                    create=True, size=nbytes)
                return seg
        """
        assert run(source, "src/repro/platform/sup.py", "GMS003") == []


class TestGMS004SilentSuppression:
    def test_silent_pass_and_continue_flagged(self):
        source = """
            def swallow(items):
                out = []
                for item in items:
                    try:
                        out.append(item())
                    except Exception:
                        continue
                try:
                    out.sort()
                except:
                    pass
                return out
        """
        findings = run(source, "src/repro/platform/sw.py", "GMS004")
        assert [(f.rule, f.line) for f in findings] == [
            ("GMS004", 7), ("GMS004", 11),
        ]

    def test_logged_suppression_passes(self):
        source = """
            import logging

            logger = logging.getLogger(__name__)

            def careful(fn):
                try:
                    return fn()
                except Exception:
                    logger.debug("swallowed", exc_info=True)
                    return None
        """
        assert run(source, "src/repro/platform/log.py", "GMS004") == []

    def test_suppress_helper_passes(self):
        source = """
            def teardown(segs, _suppress):
                for name, seg in segs.items():
                    try:
                        seg.close()
                    except Exception as exc:
                        _suppress("close", name, exc)
        """
        assert run(source, "src/repro/platform/sup2.py", "GMS004") == []

    def test_reraise_passes(self):
        source = """
            import os

            def staged(path, parse):
                try:
                    parse(path)
                except Exception:
                    os.remove(path)
                    raise
        """
        assert run(source, "src/repro/platform/rr.py", "GMS004") == []

    def test_narrow_handler_exempt(self):
        source = """
            def lookup(table, key):
                try:
                    return table[key]
                except KeyError:
                    return None
        """
        assert run(source, "src/repro/platform/narrow.py", "GMS004") == []

    def test_inline_suppression_honored(self):
        source = """
            def stored_and_reraised(box, fn):
                try:
                    fn()
                except BaseException as exc:  # gms: ignore[GMS004]
                    box.append(exc)
        """
        assert run(source, "src/repro/platform/box.py", "GMS004") == []


class TestGMS005Determinism:
    def test_global_rng_draws_flagged(self):
        source = """
            import random

            import numpy as np

            def jitter():
                return np.random.rand() + random.random()
        """
        findings = run(source, "src/repro/platform/rng.py", "GMS005")
        assert lines(findings) == [7, 7]
        assert all(f.rule == "GMS005" for f in findings)

    def test_seeded_generators_pass(self):
        source = """
            import random

            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                pyrng = random.Random(seed)
                return rng.integers(10), pyrng.randint(0, 9)
        """
        assert run(source, "src/repro/platform/seeded.py", "GMS005") == []

    def test_wall_clock_into_values_flagged(self):
        source = """
            from datetime import datetime

            def stamp(result):
                result["generated"] = datetime.now().isoformat()
                return result
        """
        findings = run(source, "src/repro/platform/clock.py", "GMS005")
        assert lines(findings) == [5]

    def test_time_time_timing_fields_exempt(self):
        source = """
            import time

            def measure(fn):
                start = time.time()
                fn()
                return time.time() - start
        """
        assert run(source, "src/repro/platform/timing.py", "GMS005") == []

    def test_set_iteration_flagged_but_sorted_passes(self):
        source = """
            def reassemble(parts):
                out = []
                for part in set(parts):
                    out.append(part)
                for part in sorted(set(parts)):
                    out.append(part)
                return out
        """
        findings = run(source, "src/repro/platform/iter.py", "GMS005")
        assert lines(findings) == [4]


class TestGMS006DeprecatedShims:
    def test_shim_calls_flagged(self):
        source = """
            from repro.platform import run_suite

            def drive(plan, args, graph):
                payload = run_suite(plan)
                cls = args.resolve_set_class_for_graph(graph)
                return payload, cls
        """
        findings = run(source, "src/repro/platform/drv.py", "GMS006")
        assert lines(findings) == [5, 6]

    def test_module_form_resolver_passes(self):
        source = """
            from repro.platform import cli
            from repro.platform.cli import resolve_set_class_for_graph

            def drive(graph):
                one = cli.resolve_set_class_for_graph(graph)
                two = resolve_set_class_for_graph(graph)
                return one, two
        """
        assert run(source, "src/repro/platform/mod.py", "GMS006") == []

    def test_run_suite_parallel_not_confused(self):
        source = """
            from repro.platform import run_suite_parallel

            def drive(plan):
                return run_suite_parallel(plan, workers=2)
        """
        assert run(source, "src/repro/platform/par.py", "GMS006") == []

    def test_definition_modules_exempt(self):
        source = """
            from repro.platform import run_suite

            def shim(plan):
                return run_suite(plan)
        """
        assert run(source, "src/repro/platform/suite.py", "GMS006") == []


class TestSuppressionMachinery:
    def test_bare_ignore_suppresses_all_rules(self):
        source = """
            import numpy as np

            def shrink(a, b):
                return np.intersect1d(a, b)  # gms: ignore
        """
        assert analyze_source(textwrap.dedent(source),
                              "src/repro/mining/all.py") == []

    def test_ignore_for_other_rule_does_not_suppress(self):
        source = """
            import numpy as np

            def shrink(a, b):
                return np.intersect1d(a, b)  # gms: ignore[GMS004]
        """
        findings = analyze_source(textwrap.dedent(source),
                                  "src/repro/mining/other.py",
                                  select=["GMS001"])
        assert lines(findings) == [5]

    def test_marker_inside_string_is_inert(self):
        source = '''
            import numpy as np

            DOC = "write # gms: ignore[GMS001] on the offending line"

            def shrink(a, b):
                return np.intersect1d(a, b)
        '''
        findings = analyze_source(textwrap.dedent(source),
                                  "src/repro/mining/str.py",
                                  select=["GMS001"])
        assert lines(findings) == [7]

    def test_syntax_error_raises_lint_error(self):
        from repro.analysis import LintError

        with pytest.raises(LintError, match="cannot parse"):
            analyze_source("def broken(:\n", "src/repro/mining/broken.py")

"""Property tests for the bounded (LRU) MaterializationCache.

The budget contract (hypothesis-driven): under any request sequence over
any mix of graphs, backends, and orderings,

* total resident bytes never exceed ``budget_bytes``;
* eviction is least-recently-used (a hit refreshes recency);
* the hit/miss/eviction counters stay mutually consistent;
* a re-request after eviction transparently rebuilds an *equivalent*
  ``SetGraph`` — and ``SetGraph`` objects handed out before the eviction
  stay fully usable.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bit_set import BitSet
from repro.core.roaring import RoaringSet
from repro.core.sorted_set import SortedSet
from repro.graph import build_undirected
from repro.graph.set_graph import MaterializationCache, build_set_graph

BACKENDS = (SortedSet, BitSet, RoaringSet)
ORDER_NAMES = ("DEG", "DGR")


def _graphs():
    """A few distinct small graphs (distinct sizes → distinct footprints)."""
    out = []
    for n, m, seed in [(12, 20, 1), (20, 50, 2), (30, 90, 3)]:
        G = nx.gnm_random_graph(n, m, seed=seed)
        out.append(build_undirected(n, list(G.edges())))
    return out


GRAPHS = _graphs()

#: One cache request: (kind, graph index, backend index, ordering index).
REQUESTS = st.lists(
    st.tuples(
        st.sampled_from(["set_graph", "oriented"]),
        st.integers(0, len(GRAPHS) - 1),
        st.integers(0, len(BACKENDS) - 1),
        st.integers(0, len(ORDER_NAMES) - 1),
    ),
    min_size=1,
    max_size=40,
)

BUDGETS = st.sampled_from([0, 500, 2_000, 10_000, 100_000])


def _request(cache, kind, gi, bi, oi):
    graph = GRAPHS[gi]
    if kind == "set_graph":
        return cache.set_graph(graph, BACKENDS[bi])
    _, dag = cache.oriented(graph, BACKENDS[bi], ORDER_NAMES[oi])
    return dag


def _resident_bytes(cache):
    return sum(sg.storage_bytes() for sg in cache._graphs.values())


@given(requests=REQUESTS, budget=BUDGETS)
@settings(max_examples=40, deadline=None)
def test_budget_never_exceeded_and_accounting_exact(requests, budget):
    cache = MaterializationCache(budget_bytes=budget)
    for req in requests:
        _request(cache, *req)
        # The invariant that makes the cache safe for a long-lived
        # service: the resident payload always fits the budget...
        assert cache.resident_bytes <= budget
        # ...and the byte accounting matches what is actually resident.
        assert cache.resident_bytes == _resident_bytes(cache)
        assert cache._sizes.keys() == cache._graphs.keys()


@given(requests=REQUESTS, budget=BUDGETS)
@settings(max_examples=40, deadline=None)
def test_counters_stay_consistent(requests, budget):
    cache = MaterializationCache(budget_bytes=budget)
    graph_requests = 0
    for req in requests:
        _request(cache, *req)
        graph_requests += 1
    stats = cache.stats()
    # Every SetGraph request is a hit or a miss; `oriented` additionally
    # looks up the memoized ordering, adding its own hits/misses on top.
    ordering_requests = sum(1 for r in requests if r[0] == "oriented")
    assert stats["hits"] + stats["misses"] == (
        graph_requests + ordering_requests
    )
    # Entries still resident = insertions - evictions, exactly.
    assert stats["set_graphs"] + stats["oriented"] == (
        stats["insertions"] - stats["evictions"]
    )
    assert stats["evictions"] <= stats["insertions"]
    assert stats["insertions"] <= stats["misses"]
    assert stats["budget_bytes"] == budget


@given(requests=REQUESTS, budget=st.sampled_from([0, 500, 2_000]))
@settings(max_examples=30, deadline=None)
def test_evicted_graphs_release_orderings_and_pins(requests, budget):
    # The long-lived-service guarantee: once a graph's last SetGraph
    # entry is evicted, the cache must not keep pinning the source
    # CSRGraph (or its memoized orderings) — a bounded cache over a
    # stream of graphs holds no hidden per-graph state.
    cache = MaterializationCache(budget_bytes=budget)
    for req in requests:
        _request(cache, *req)
        resident_gids = {key[1] for key in cache._graphs}
        assert set(cache._pinned) <= resident_gids
        assert {key[0] for key in cache._orderings} <= resident_gids


@given(requests=REQUESTS)
@settings(max_examples=40, deadline=None)
def test_unbounded_cache_never_evicts(requests):
    cache = MaterializationCache()
    handed_out = [_request(cache, *req) for req in requests]
    assert cache.evictions == 0
    # Identity caching: the same request returns the same object.
    again = [_request(cache, *req) for req in requests]
    assert all(a is b for a, b in zip(handed_out, again))


def test_eviction_order_is_lru():
    graph = GRAPHS[0]
    size_a = build_set_graph(graph, SortedSet).storage_bytes()
    size_b = build_set_graph(graph, BitSet).storage_bytes()
    size_c = build_set_graph(graph, RoaringSet).storage_bytes()
    # Budget holds any two of the three entries, but not all three.
    cache = MaterializationCache(budget_bytes=size_a + size_b + size_c - 1)

    a = cache.set_graph(graph, SortedSet)
    b = cache.set_graph(graph, BitSet)
    # Touch `a`: recency is now [b (oldest), a] — a *hit* must refresh.
    assert cache.set_graph(graph, SortedSet) is a
    # Inserting `c` forces exactly one eviction, and the victim must be
    # the least recently used entry `b`, not the refreshed `a`.
    cache.set_graph(graph, RoaringSet)
    assert cache.evictions == 1
    assert cache.set_graph(graph, SortedSet) is a  # survived (hit)
    misses_before = cache.misses
    assert cache.set_graph(graph, BitSet) is not b  # evicted → rebuilt
    assert cache.misses == misses_before + 1


@given(budget=st.sampled_from([0, 100, 1_000]))
@settings(max_examples=10, deadline=None)
def test_rerequest_after_eviction_rebuilds_equivalent_graph(budget):
    graph = GRAPHS[1]
    cache = MaterializationCache(budget_bytes=budget)
    first = cache.set_graph(graph, SortedSet)
    # Thrash the cache so `first` is (for small budgets) evicted.
    for cls in (BitSet, RoaringSet):
        cache.set_graph(graph, cls)
        cache.oriented(graph, cls, "DEG")
    rebuilt = cache.set_graph(graph, SortedSet)
    # Equivalent content whether or not the entry survived...
    assert rebuilt.num_nodes == first.num_nodes
    for v in range(first.num_nodes):
        assert sorted(rebuilt.out_neigh(v).to_array().tolist()) == (
            sorted(first.out_neigh(v).to_array().tolist())
        )
    # ...and the evicted handout itself stayed fully valid (shared
    # read-only contract: the cache dropping its reference must never
    # invalidate sets a kernel is still holding).
    assert first.num_edges == rebuilt.num_edges


def test_single_oversized_entry_is_handed_out_but_not_retained():
    graph = GRAPHS[2]
    size = build_set_graph(graph, SortedSet).storage_bytes()
    cache = MaterializationCache(budget_bytes=size - 1)
    sg = cache.set_graph(graph, SortedSet)
    assert sg.num_nodes == graph.num_nodes  # still served
    assert cache.resident_bytes == 0  # but never resident over budget
    assert cache.evictions == 1
    # A second request rebuilds (miss), not hits.
    cache.set_graph(graph, SortedSet)
    assert cache.hits == 0
    assert cache.misses == 2


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        MaterializationCache(budget_bytes=-1)

"""Triangles, k-cores, k-clique-stars, densest subgraph, FSM."""

from __future__ import annotations

from itertools import combinations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitSet, SortedSet
from repro.graph import build_undirected
from repro.graph import generators as gen
from repro.mining import (
    approx_core_numbers,
    canonical_form,
    core_histogram,
    core_numbers,
    densest_subgraph,
    frequent_subgraphs,
    k_core,
    kclique_star_count,
    kclique_stars,
    mni_support,
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)
from tests.conftest import random_csr


class TestTriangles:
    @pytest.mark.parametrize("seed", range(3))
    def test_both_schemes_match_networkx(self, seed):
        csr, G = random_csr(50, 260, seed)
        expect = sum(nx.triangles(G).values()) // 3
        assert triangle_count_node_iterator(csr) == expect
        assert triangle_count_rank_merge(csr) == expect

    def test_set_class_paths(self, set_cls):
        csr, G = random_csr(30, 140, 5)
        expect = sum(nx.triangles(G).values()) // 3
        assert triangle_count_node_iterator(csr, set_cls) == expect
        assert triangle_count_rank_merge(csr, set_cls) == expect


class TestKCore:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_networkx(self, k):
        csr, G = random_csr(60, 240, 6)
        sub, members = k_core(csr, k)
        nx_core = nx.k_core(G, k)
        assert set(members.tolist()) == set(nx_core.nodes())
        assert sub.num_edges == nx_core.number_of_edges()

    def test_above_degeneracy_empty(self):
        csr, G = random_csr(30, 60, 7)
        _, members = k_core(csr, 50)
        assert len(members) == 0

    def test_histogram_sums_to_n(self):
        csr, _ = random_csr(40, 160, 8)
        hist = core_histogram(csr)
        assert sum(c for _, c in hist) == 40

    def test_approx_vs_exact(self):
        csr, _ = random_csr(80, 400, 9)
        exact = core_numbers(csr)
        approx = approx_core_numbers(csr, eps=0.5)
        assert np.all(approx >= exact / 2.0 - 1e-9)


class TestKCliqueStars:
    def test_stars_complete_to_k_plus_1_cliques(self):
        csr, G = random_csr(25, 110, 10)
        for clique, star in kclique_stars(csr, 3):
            for s in star:
                assert all(G.has_edge(s, c) for c in clique)

    def test_brute_force_equivalence(self):
        csr, G = random_csr(16, 60, 11)
        got = {
            (tuple(c), tuple(sorted(s))) for c, s in kclique_stars(csr, 3)
        }
        expect = set()
        for trio in combinations(range(16), 3):
            if all(G.has_edge(a, b) for a, b in combinations(trio, 2)):
                star = [
                    w
                    for w in G.nodes()
                    if w not in trio and all(G.has_edge(w, c) for c in trio)
                ]
                if star:
                    expect.add((trio, tuple(sorted(star))))
        assert got == expect

    def test_min_star_filter(self):
        csr, _ = random_csr(20, 80, 12)
        assert kclique_star_count(csr, 3, min_star=2) <= kclique_star_count(
            csr, 3, min_star=1
        )

    def test_invalid_k(self):
        csr, _ = random_csr(5, 5, 1)
        with pytest.raises(ValueError):
            kclique_stars(csr, 1)


class TestDensest:
    def test_half_approximation(self):
        csr, G = random_csr(13, 36, 13)
        verts, density = densest_subgraph(csr)
        best = 0.0
        for r in range(1, 14):
            for S in combinations(range(13), r):
                sub = G.subgraph(S)
                best = max(best, sub.number_of_edges() / len(S))
        assert best / 2 - 1e-9 <= density <= best + 1e-9

    def test_returned_set_has_claimed_density(self):
        csr, G = random_csr(30, 120, 14)
        verts, density = densest_subgraph(csr)
        sub = G.subgraph(verts.tolist())
        assert abs(sub.number_of_edges() / len(verts) - density) < 1e-9

    def test_planted_dense_core_found(self):
        g = gen.planted_cliques(60, 40, [(10, 1)], seed=15)
        verts, density = densest_subgraph(g)
        assert density >= (10 - 1) / 2 * 0.9  # near-clique density

    def test_empty(self):
        verts, density = densest_subgraph(build_undirected(0, []))
        assert density == 0.0


class TestFSM:
    def test_edge_pattern_support(self):
        g = build_undirected(4, [(0, 1), (1, 2), (2, 3)])
        support, count = mni_support(g, 2, ((0, 1),))
        assert support == 4  # every vertex appears as an endpoint
        assert count == 6  # 3 edges x 2 orientations

    def test_bfs_and_dfs_agree(self):
        g = gen.holme_kim(40, 3, 0.5, seed=16)
        bfs = frequent_subgraphs(g, min_support=5, max_edges=3, strategy="bfs")
        dfs = frequent_subgraphs(g, min_support=5, max_edges=3, strategy="dfs")
        canon = lambda ps: {canonical_form(p.num_vertices, p.edges) for p in ps}
        assert canon(bfs) == canon(dfs)

    def test_support_antimonotone(self):
        g = gen.holme_kim(40, 3, 0.5, seed=17)
        patterns = frequent_subgraphs(g, min_support=3, max_edges=3)
        by_canon = {
            canonical_form(p.num_vertices, p.edges): p.support for p in patterns
        }
        tri = canonical_form(3, ((0, 1), (1, 2), (0, 2)))
        edge = canonical_form(2, ((0, 1),))
        if tri in by_canon:
            assert by_canon[tri] <= by_canon[edge]

    def test_triangle_pattern_found_in_triangle_graph(self):
        g = build_undirected(3, [(0, 1), (1, 2), (0, 2)])
        patterns = frequent_subgraphs(g, min_support=3, max_edges=3)
        canons = {canonical_form(p.num_vertices, p.edges) for p in patterns}
        assert canonical_form(3, ((0, 1), (1, 2), (0, 2))) in canons

    def test_threshold_prunes(self):
        g = build_undirected(3, [(0, 1), (1, 2), (0, 2)])
        assert frequent_subgraphs(g, min_support=100) == []

    def test_invalid_strategy(self):
        g = build_undirected(2, [(0, 1)])
        with pytest.raises(ValueError):
            frequent_subgraphs(g, 1, strategy="bogus")


class TestCanonicalForm:
    @settings(max_examples=25, deadline=None)
    @given(perm_seed=st.integers(0, 1000))
    def test_invariant_under_relabeling(self, perm_seed):
        rng = np.random.default_rng(perm_seed)
        edges = ((0, 1), (1, 2), (2, 3), (0, 3))
        perm = rng.permutation(4)
        relabeled = tuple(
            (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in edges
        )
        assert canonical_form(4, edges) == canonical_form(4, relabeled)

    def test_distinguishes_path_from_star(self):
        path = ((0, 1), (1, 2), (2, 3))
        star = ((0, 1), (0, 2), (0, 3))
        assert canonical_form(4, path) != canonical_form(4, star)

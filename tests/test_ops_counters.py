"""Merge/galloping kernels and the software performance counters."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    COUNTERS,
    Snapshot,
    SortedSet,
    diff_merge,
    intersect_count_galloping,
    intersect_count_merge,
    intersect_galloping,
    intersect_merge,
    merge_snapshots,
    reset,
    snapshot,
    union_merge,
)

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=500), max_size=40
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(a=sorted_arrays, b=sorted_arrays)
def test_galloping_equals_merge(a, b):
    assert np.array_equal(intersect_galloping(a, b), intersect_merge(a, b))
    assert intersect_count_galloping(a, b) == intersect_count_merge(a, b)


@settings(max_examples=40, deadline=None)
@given(a=sorted_arrays, b=sorted_arrays)
def test_union_diff_kernels(a, b):
    assert set(union_merge(a, b)) == set(a) | set(b)
    assert set(diff_merge(a, b)) == set(a) - set(b)


def test_galloping_skewed_sizes():
    small = np.array([5, 500_000], dtype=np.int64)
    large = np.arange(0, 1_000_000, 5, dtype=np.int64)
    assert intersect_galloping(small, large).tolist() == [5, 500000]


def test_counters_accumulate_and_snapshot():
    reset()
    before = snapshot()
    a = SortedSet.from_iterable([1, 2, 3])
    b = SortedSet.from_iterable([2, 3, 4])
    a.intersect(b)
    a.contains(1)
    after = snapshot()
    delta = before.delta(after)
    assert delta.set_ops == 1
    assert delta.point_ops == 1
    assert delta.elements_read >= 6
    assert delta.memory_traffic == delta.elements_read + delta.elements_written


def test_counters_reset():
    COUNTERS.record_bulk(10, 5)
    reset()
    assert COUNTERS.set_ops == 0
    assert COUNTERS.memory_traffic == 0


# --- Snapshot merging (the parallel suite runner's correctness lemma) ---

snapshots = st.builds(
    Snapshot,
    set_ops=st.integers(0, 10**9),
    point_ops=st.integers(0, 10**9),
    elements_read=st.integers(0, 10**12),
    elements_written=st.integers(0, 10**12),
    sketch_builds=st.integers(0, 10**6),
)


@settings(max_examples=60, deadline=None)
@given(a=snapshots, b=snapshots, c=snapshots)
def test_snapshot_merge_is_associative_and_commutative(a, b, c):
    # These two laws are what make sharded execution safe: however the
    # cells are chunked across workers, and in whatever order the shards
    # complete, the merged totals are the sequential totals.
    assert a.merge(b) == b.merge(a)
    assert a.merge(b).merge(c) == a.merge(b.merge(c))
    assert a.merge(Snapshot.zero()) == a
    assert (a + b).memory_traffic == a.memory_traffic + b.memory_traffic


@settings(max_examples=40, deadline=None)
@given(deltas=st.lists(snapshots, max_size=8),
       split=st.integers(0, 8))
def test_merge_of_shards_equals_sequential_totals(deltas, split):
    # Sequential totals = merge over all per-cell deltas, in order.
    sequential = merge_snapshots(deltas)
    # Sharded totals = per-shard merges, merged (any split point).
    split = min(split, len(deltas))
    sharded = merge_snapshots(
        [merge_snapshots(deltas[:split]), merge_snapshots(deltas[split:])]
    )
    assert sharded == sequential
    # The set-op and sketch_builds fields the suite artifact reports:
    assert sequential.set_ops == sum(d.set_ops for d in deltas)
    assert sequential.sketch_builds == sum(d.sketch_builds for d in deltas)


@settings(max_examples=20, deadline=None)
@given(a=snapshots, b=snapshots)
def test_absorb_folds_worker_deltas_into_the_global_block(a, b):
    reset()
    COUNTERS.absorb(a)
    COUNTERS.absorb(b)
    assert snapshot() == a.merge(b)
    reset()

"""Merge/galloping kernels and the software performance counters."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    COUNTERS,
    SortedSet,
    diff_merge,
    intersect_count_galloping,
    intersect_count_merge,
    intersect_galloping,
    intersect_merge,
    reset,
    snapshot,
    union_merge,
)

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=500), max_size=40
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(a=sorted_arrays, b=sorted_arrays)
def test_galloping_equals_merge(a, b):
    assert np.array_equal(intersect_galloping(a, b), intersect_merge(a, b))
    assert intersect_count_galloping(a, b) == intersect_count_merge(a, b)


@settings(max_examples=40, deadline=None)
@given(a=sorted_arrays, b=sorted_arrays)
def test_union_diff_kernels(a, b):
    assert set(union_merge(a, b)) == set(a) | set(b)
    assert set(diff_merge(a, b)) == set(a) - set(b)


def test_galloping_skewed_sizes():
    small = np.array([5, 500_000], dtype=np.int64)
    large = np.arange(0, 1_000_000, 5, dtype=np.int64)
    assert intersect_galloping(small, large).tolist() == [5, 500000]


def test_counters_accumulate_and_snapshot():
    reset()
    before = snapshot()
    a = SortedSet.from_iterable([1, 2, 3])
    b = SortedSet.from_iterable([2, 3, 4])
    a.intersect(b)
    a.contains(1)
    after = snapshot()
    delta = before.delta(after)
    assert delta.set_ops == 1
    assert delta.point_ops == 1
    assert delta.elements_read >= 6
    assert delta.memory_traffic == delta.elements_read + delta.elements_written


def test_counters_reset():
    COUNTERS.record_bulk(10, 5)
    reset()
    assert COUNTERS.set_ops == 0
    assert COUNTERS.memory_traffic == 0

"""Graph coloring, Borůvka MST, Karger–Stein min cut."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_undirected
from repro.optimization import (
    boruvka,
    contract_once,
    johansson,
    jones_plassmann,
    karger_stein,
    verify_coloring,
)
from repro.preprocess import degeneracy_order
from tests.conftest import random_csr


class TestColoring:
    @pytest.mark.parametrize("priority", ["random", "FF", "LF", "SL"])
    def test_jp_proper(self, priority):
        csr, _ = random_csr(60, 260, 31)
        res = jones_plassmann(csr, priority, seed=1)
        assert verify_coloring(csr, res.colors)
        assert res.rounds >= 1

    def test_jp_sl_respects_degeneracy_bound(self):
        """SL (degeneracy) priorities color with ≤ d + 1 colors."""
        for seed in range(3):
            csr, _ = random_csr(60, 300, seed)
            _, d = degeneracy_order(csr)
            res = jones_plassmann(csr, "SL")
            assert res.num_colors <= d + 1

    def test_johansson_proper(self):
        csr, _ = random_csr(50, 220, 32)
        res = johansson(csr, seed=2)
        assert verify_coloring(csr, res.colors)
        assert res.num_colors <= csr.max_degree() + 1

    def test_bipartite_graph_two_colors(self):
        G = nx.complete_bipartite_graph(5, 7)
        csr = build_undirected(12, list(G.edges()))
        res = jones_plassmann(csr, "SL")
        assert res.num_colors == 2

    def test_verify_rejects_bad_coloring(self):
        csr = build_undirected(2, [(0, 1)])
        assert not verify_coloring(csr, np.array([0, 0]))
        assert not verify_coloring(csr, np.array([-1, 0]))
        assert not verify_coloring(csr, np.array([0]))

    def test_unknown_priority(self):
        csr, _ = random_csr(5, 6, 33)
        with pytest.raises(ValueError):
            jones_plassmann(csr, "bogus")

    def test_empty_graph(self):
        res = jones_plassmann(build_undirected(0, []), "random")
        assert res.num_colors == 0


class TestBoruvka:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_weight_matches_networkx(self, seed):
        csr, G = random_csr(30, 90, seed)
        edge_arr = csr.edge_array()
        rng = np.random.default_rng(seed)
        w = rng.random(len(edge_arr)) * 10 + 1
        res = boruvka(csr, w)
        for (u, v), wt in zip(edge_arr.tolist(), w.tolist()):
            G[u][v]["weight"] = wt
        expect = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_edges(G, data=True)
        )
        assert abs(res.total_weight - expect) < 1e-9

    def test_forest_size_and_components(self):
        csr, G = random_csr(40, 100, 34)
        res = boruvka(csr)
        n_comp = nx.number_connected_components(G)
        assert len(res.edges) == 40 - n_comp
        assert res.num_components == n_comp

    def test_logarithmic_rounds(self):
        csr, _ = random_csr(128, 700, 35)
        res = boruvka(csr)
        assert res.rounds <= 9  # ~log2(128) + slack

    def test_weight_alignment_validated(self):
        csr, _ = random_csr(10, 20, 36)
        with pytest.raises(ValueError):
            boruvka(csr, np.ones(3))

    def test_acyclic(self):
        csr, _ = random_csr(25, 80, 37)
        res = boruvka(csr)
        F = nx.Graph(res.edges)
        assert nx.is_forest(F)


class TestMinCut:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_stoer_wagner(self, seed):
        G = nx.gnm_random_graph(14, 34, seed=seed)
        if not nx.is_connected(G):
            pytest.skip("disconnected sample")
        csr = build_undirected(14, list(G.edges()))
        expect, _ = nx.stoer_wagner(G)
        assert karger_stein(csr, seed=seed) == expect

    def test_disconnected_graph_cut_zero(self):
        csr = build_undirected(4, [(0, 1), (2, 3)])
        assert karger_stein(csr) == 0

    def test_single_contraction_upper_bounds(self):
        csr, G = random_csr(12, 30, 38)
        if nx.is_connected(G):
            cut, _ = nx.stoer_wagner(G)
            assert contract_once(csr, seed=1) >= cut

    def test_tiny_graphs(self):
        assert karger_stein(build_undirected(1, [])) == 0
        assert karger_stein(build_undirected(2, [(0, 1)])) == 1

    def test_bridge_graph(self):
        # Two K4s joined by one bridge: min cut = 1.
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i + 4, j + 4) for i in range(4) for j in range(i + 1, 4)]
        edges.append((0, 4))
        csr = build_undirected(8, edges)
        assert karger_stein(csr, seed=3) == 1

"""Vertex reordering schemes: DEG, DGR, ADG, TRI (paper section 6.1)."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_undirected
from repro.preprocess import (
    ORDERINGS,
    approx_coreness,
    approx_degeneracy_order,
    compute_ordering,
    coreness,
    degeneracy_order,
    degree_order,
    identity_order,
    random_order,
    triangle_count_order,
)
from tests.conftest import random_csr


class TestDegreeOrder:
    def test_non_decreasing(self):
        csr, _ = random_csr(40, 150, 0)
        res = degree_order(csr)
        degs = csr.degrees()[res.order]
        assert all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))

    def test_rank_is_inverse(self):
        csr, _ = random_csr(40, 150, 1)
        res = degree_order(csr)
        assert np.array_equal(res.rank[res.order], np.arange(40))


class TestExactDegeneracy:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        csr, G = random_csr(60, 200, seed)
        _, d = degeneracy_order(csr)
        assert d == max(nx.core_number(G).values())

    @pytest.mark.parametrize("seed", range(5))
    def test_coreness_matches_networkx(self, seed):
        csr, G = random_csr(60, 200, seed)
        cores = coreness(csr)
        nx_cores = nx.core_number(G)
        assert all(cores[v] == nx_cores[v] for v in G)

    def test_degeneracy_order_property(self):
        # Every vertex has at most d neighbors later in the order.
        csr, _ = random_csr(50, 250, 7)
        order, d = degeneracy_order(csr)
        rank = np.empty(50, dtype=np.int64)
        rank[order] = np.arange(50)
        for v in range(50):
            later = int((rank[csr.out_neigh(v)] > rank[v]).sum())
            assert later <= d

    def test_clique_degeneracy(self):
        n = 8
        g = build_undirected(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        _, d = degeneracy_order(g)
        assert d == n - 1

    def test_empty_graph(self):
        order, d = degeneracy_order(build_undirected(0, []))
        assert len(order) == 0 and d == 0

    def test_edgeless_graph(self):
        order, d = degeneracy_order(build_undirected(5, []))
        assert sorted(order.tolist()) == list(range(5)) and d == 0


class TestADG:
    @pytest.mark.parametrize("eps", [0.01, 0.1, 0.5, 1.0])
    def test_is_approximate_degeneracy_order(self, eps):
        """Every vertex has ≤ 2(1+ε)·d later-ranked neighbors (paper §6.1)."""
        csr, _ = random_csr(80, 400, 3)
        _, d = degeneracy_order(csr)
        res = approx_degeneracy_order(csr, eps=eps)
        rank = res.rank
        for v in range(80):
            later = int((rank[csr.out_neigh(v)] > rank[v]).sum())
            assert later <= math.ceil(2 * (1 + eps) * max(d, 1))

    def test_logarithmic_rounds(self):
        csr, _ = random_csr(500, 2500, 4)
        res = approx_degeneracy_order(csr, eps=0.5)
        # O(log n) rounds: generous constant.
        assert res.rounds <= 6 * math.log2(500)

    def test_smaller_eps_more_rounds(self):
        csr, _ = random_csr(300, 1500, 5)
        r_small = approx_degeneracy_order(csr, eps=0.01).rounds
        r_large = approx_degeneracy_order(csr, eps=1.0).rounds
        assert r_small >= r_large

    def test_rejects_negative_eps(self):
        csr, _ = random_csr(10, 20, 6)
        with pytest.raises(ValueError):
            approx_degeneracy_order(csr, eps=-0.5)

    def test_orders_all_vertices(self):
        csr, _ = random_csr(70, 300, 7)
        res = approx_degeneracy_order(csr)
        assert sorted(res.order.tolist()) == list(range(70))

    def test_approx_coreness_bounds(self):
        """Lower bound c(v)/2 per vertex; upper bound (1+ε)·d globally."""
        csr, _ = random_csr(100, 500, 8)
        exact = coreness(csr)
        _, d = degeneracy_order(csr)
        eps = 0.5
        approx = approx_coreness(csr, eps=eps)
        for v in range(100):
            assert approx[v] >= exact[v] / 2.0 - 1e-9
            assert approx[v] <= (1 + eps) * d + 1e-9


class TestOtherOrderings:
    def test_triangle_order_sorted_by_counts(self):
        csr, G = random_csr(40, 160, 9)
        res = triangle_count_order(csr)
        tri = nx.triangles(G)
        counts = [tri[v] for v in res.order.tolist()]
        assert counts == sorted(counts)

    def test_identity(self):
        csr, _ = random_csr(10, 20, 10)
        assert identity_order(csr).order.tolist() == list(range(10))

    def test_random_is_permutation(self):
        csr, _ = random_csr(30, 60, 11)
        res = random_order(csr, seed=3)
        assert sorted(res.order.tolist()) == list(range(30))


class TestRegistry:
    def test_compute_ordering_dispatch(self):
        csr, _ = random_csr(20, 40, 12)
        for name in ORDERINGS:
            res = compute_ordering(csr, name)
            assert res.name == name or name in ("ADG",)

    def test_unknown_ordering(self):
        csr, _ = random_csr(5, 5, 13)
        with pytest.raises(KeyError, match="unknown ordering"):
            compute_ordering(csr, "nope")

"""Pipeline, CLI, bench harness helpers, and the Table 5/6/8 bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import BitSet
from repro.graph import build_model, load_dataset
from repro.mining import bron_kerbosch
from repro.platform import (
    Args,
    Pipeline,
    parallel_reorder_seconds,
    parse_args,
    print_table,
    simulated_parallel_seconds,
    write_artifact,
)
from repro.theory import TABLE5, TABLE6, check_scaling, table8_time
from tests.conftest import random_csr


class TestPipeline:
    def make_pipeline(self, csr):
        class TrianglePipeline(Pipeline):
            def __init__(self, graph):
                self.graph = graph
                self.result = None

            def preprocess(self):
                from repro.preprocess import degree_order

                self.order = degree_order(self.graph)

            def kernel(self):
                from repro.mining import triangle_count_rank_merge

                self.result = triangle_count_rank_merge(self.graph)

        return TrianglePipeline(csr)

    def test_stages_run_in_order_with_timing(self):
        csr, G = random_csr(30, 120, 41)
        report = self.make_pipeline(csr).run()
        assert [s.name for s in report.stages] == [
            "convert", "preprocess", "kernel",
        ]
        assert report.total_seconds >= 0
        import networkx as nx

        assert report.result == sum(nx.triangles(G).values()) // 3

    def test_stage_lookup_and_fraction(self):
        csr, _ = random_csr(30, 120, 42)
        report = self.make_pipeline(csr).run()
        assert 0 <= report.fraction("kernel") <= 1
        with pytest.raises(KeyError):
            report.stage("nope")

    def test_kernel_required(self):
        with pytest.raises(NotImplementedError):
            Pipeline().run()


class TestCLI:
    def test_defaults(self):
        args = parse_args([])
        assert args.dataset == "gearbox-mini"
        assert args.threads == [1, 2, 4, 8, 16, 32]

    def test_custom(self):
        args = parse_args(
            ["--dataset", "jester2-mini", "--set-class", "roaring",
             "--ordering", "DGR", "--k", "5", "--threads", "1", "4"]
        )
        assert args.dataset == "jester2-mini"
        assert args.set_class == "roaring"
        assert args.ordering == "DGR"
        assert args.k == 5
        assert args.threads == [1, 4]

    def test_args_dataclass_defaults(self):
        assert Args().threads == [1, 2, 4, 8, 16, 32]


class TestBenchHelpers:
    def test_parallel_reorder_models(self):
        # DGR: no speedup; ADG/DEG: near-linear.
        assert parallel_reorder_seconds("DGR", 1.0, 100, 16) == 1.0
        adg = parallel_reorder_seconds("ADG", 1.0, 8, 16)
        assert adg < 0.1
        deg = parallel_reorder_seconds("DEG", 1.0, 1, 16)
        assert deg < adg + 1.0 / 16 + 1e-3
        with pytest.raises(ValueError):
            parallel_reorder_seconds("ADG", 1.0, 8, 0)

    def test_simulated_parallel_seconds_decreases(self):
        g = load_dataset("sc-ht-mini")
        res = bron_kerbosch(g, "ADG", BitSet)
        t1 = simulated_parallel_seconds(res, threads=1)
        t16 = simulated_parallel_seconds(res, threads=16)
        assert t16 < t1
        assert t1 == pytest.approx(
            res.reorder_seconds + sum(res.task_costs), rel=0.1
        )

    def test_print_table_smoke(self, capsys):
        print_table("demo", ["a", "b"], [[1, 2], [3, 4]])
        out = capsys.readouterr().out
        assert "demo" in out and "3" in out

    def test_write_artifact(self, tmp_path, monkeypatch):
        import repro.platform.bench as bench

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        path = bench.write_artifact("t", {"x": np.arange(3)})
        assert path.endswith("t.json")
        import json

        assert json.load(open(path))["x"] == [0, 1, 2]


class TestTheory:
    def test_table5_entries_evaluate(self):
        for name, bound in TABLE5.items():
            w = bound.work(n=1000, m=5000, d=10, k=4, Delta=50, eps=0.1)
            dpt = bound.depth(n=1000, m=5000, d=10, k=4, Delta=50, eps=0.1)
            s = bound.space(n=1000, m=5000, d=10, k=4, K=100, Delta=50, p=16)
            assert w > 0 and dpt > 0 and s > 0, name

    def test_adg_depth_polylog(self):
        adg = TABLE5["adg"]
        assert adg.depth(n=10**6, m=10**7) < 500  # log² n

    def test_bk_adg_beats_das_work_on_sparse(self):
        """On constant-degeneracy graphs ADG work ≪ Das's 3^(n/3)."""
        kw = dict(n=300, m=1500, d=4, eps=0.1)
        assert TABLE5["bk-adg"].work(**kw) < TABLE5["bk-das"].work(**kw)

    def test_bk_adg_depth_beats_eppstein(self):
        kw = dict(n=10_000, m=100_000, d=20)
        assert TABLE5["bk-adg"].depth(**kw) < TABLE5["bk-eppstein"].depth(**kw)

    def test_table6_ordering_consistent_with_paper(self):
        kw = dict(n=200, m=2000, d=6, eps=0.1)
        # This paper's bound adds only a small factor over Eppstein's.
        ours = TABLE6["this-paper"](**kw)
        epp = TABLE6["eppstein"](**kw)
        das = TABLE6["das"](**kw)
        assert epp <= ours <= das

    def test_table8_lookup(self):
        al = table8_time("bfs", "AL", 1000, 5000, 50)
        am = table8_time("bfs", "AM", 1000, 5000, 50)
        assert al < am
        with pytest.raises(KeyError):
            table8_time("bfs", "CSR++", 10, 10, 2)

    def test_check_scaling_identity(self):
        measured = {"a": 1.0, "b": 4.0}
        predicted = {"a": 10.0, "b": 40.0}
        ratios = check_scaling(measured, predicted)
        assert ratios["a->b"] == pytest.approx(1.0)


class TestAdjacencyModels:
    @pytest.mark.parametrize("kind", ["AL", "AM", "EL-sorted", "EL-unsorted"])
    def test_query_equivalence_with_csr(self, kind):
        csr, _ = random_csr(25, 90, 43)
        model = build_model(csr, kind)
        assert model.num_nodes == csr.num_nodes
        assert model.num_edges == csr.num_edges
        assert sorted(model.iter_edges()) == sorted(csr.edges())
        for v in range(25):
            assert sorted(model.neighbors(v).tolist()) == csr.out_neigh(v).tolist()
            assert model.degree(v) == csr.out_degree(v)
        for u, v in [(0, 1), (3, 17), (24, 0)]:
            assert model.has_edge(u, v) == csr.has_edge(u, v)

    def test_unknown_model(self):
        csr, _ = random_csr(5, 6, 44)
        with pytest.raises(KeyError):
            build_model(csr, "B-tree")

    def test_storage_ordering(self):
        csr, _ = random_csr(100, 300, 45)
        am = build_model(csr, "AM").storage_bytes()
        al = build_model(csr, "AL").storage_bytes()
        assert al < am  # sparse graph: AM pays n² cells


class TestTable9Bounds:
    def test_has_edge_ordering(self):
        from repro.theory import table9_time

        n, m, d = 10_000, 80_000, 500
        am = table9_time("has-edge", "AM", n, m, d)
        al = table9_time("has-edge", "AL", n, m, d)
        el_u = table9_time("has-edge", "EL-unsorted", n, m, d)
        el_s = table9_time("has-edge", "EL-sorted", n, m, d)
        assert am <= al <= el_s <= el_u

    def test_neighborhood_ordering(self):
        from repro.theory import table9_time

        n, m, d = 10_000, 80_000, 50
        assert table9_time("iter-neighborhood", "AL", n, m, d) < table9_time(
            "iter-neighborhood", "AM", n, m, d
        )
        assert table9_time("iter-neighborhood", "AM", n, m, d) < table9_time(
            "iter-neighborhood", "EL-unsorted", n, m, d
        )

    def test_unknown_entry(self):
        import pytest as _pytest

        from repro.theory import table9_time

        with _pytest.raises(KeyError):
            table9_time("has-edge", "B-tree", 10, 10, 2)

"""Property-based tests over randomly generated graphs (hypothesis)."""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import LogGraph
from repro.core import BitSet
from repro.graph import (
    build_undirected,
    orient_by_rank,
    permute,
    total_triangles,
)
from repro.mining import kclique_count
from repro.preprocess import degeneracy_order

N = 20
edge_lists = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)), max_size=60
)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists)
def test_builder_invariants(edges):
    g = build_undirected(N, edges)
    # Neighborhoods are sorted and duplicate-free.
    for v in range(N):
        neigh = g.out_neigh(v)
        assert np.all(np.diff(neigh) > 0)
        assert v not in neigh.tolist()  # no self-loops survive
    # Symmetry: (u, v) stored iff (v, u) stored.
    for u in range(N):
        for v in g.out_neigh(u).tolist():
            assert g.has_edge(v, u)
    # Handshake lemma.
    assert g.degrees().sum() == 2 * g.num_edges


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists, seed=st.integers(0, 2**31 - 1))
def test_permutation_preserves_mining_results(edges, seed):
    g = build_undirected(N, edges)
    perm = np.random.default_rng(seed).permutation(N)
    g2 = permute(g, perm)
    assert total_triangles(g2) == total_triangles(g)
    assert degeneracy_order(g2)[1] == degeneracy_order(g)[1]


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists, seed=st.integers(0, 2**31 - 1))
def test_orientation_partitions_edges(edges, seed):
    g = build_undirected(N, edges)
    rank = np.random.default_rng(seed).permutation(N)
    dag = orient_by_rank(g, rank)
    assert dag.num_edges == g.num_edges
    # No arc and its reverse both present.
    for u in range(N):
        for v in dag.out_neigh(u).tolist():
            assert not dag.has_edge(v, u)


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists)
def test_loggraph_roundtrip_arbitrary(edges):
    g = build_undirected(N, edges)
    for encoding in ("bitpack", "varint-gap"):
        assert LogGraph(g, encoding).to_csr() == g


@settings(max_examples=15, deadline=None)
@given(edges=edge_lists, k=st.integers(3, 5))
def test_kclique_matches_networkx_randomized(edges, k):
    g = build_undirected(N, edges)
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(range(N))
    expect = sum(1 for c in nx.enumerate_all_cliques(G) if len(c) == k)
    assert kclique_count(g, k, "DGR", "edge").count == expect


@settings(max_examples=15, deadline=None)
@given(edges=edge_lists)
def test_bk_count_equals_networkx_randomized(edges):
    from repro.mining import bron_kerbosch

    g = build_undirected(N, edges)
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(range(N))
    expect = sum(1 for _ in nx.find_cliques(G))
    assert bron_kerbosch(g, "ADG", BitSet).num_cliques == expect

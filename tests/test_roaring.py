"""RoaringSet container mechanics: thresholds, runs, chunk boundaries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ARRAY_CONTAINER_MAX, RoaringSet


def test_array_container_below_threshold():
    s = RoaringSet.from_iterable(range(ARRAY_CONTAINER_MAX))
    assert s.container_kinds() == {"a": 1}


def test_bitmap_container_above_threshold():
    s = RoaringSet.from_iterable(range(ARRAY_CONTAINER_MAX + 1))
    assert s.container_kinds() == {"b": 1}


def test_container_downgrade_on_remove():
    s = RoaringSet.from_iterable(range(ARRAY_CONTAINER_MAX + 1))
    s.remove(0)
    assert s.container_kinds() == {"a": 1}
    assert s.cardinality() == ARRAY_CONTAINER_MAX


def test_container_upgrade_on_add():
    s = RoaringSet.from_iterable(range(ARRAY_CONTAINER_MAX))
    s.add(ARRAY_CONTAINER_MAX)
    assert s.container_kinds() == {"b": 1}


def test_chunk_boundaries():
    values = [65535, 65536, 65537, 131071, 131072]
    s = RoaringSet.from_iterable(values)
    assert len(s._chunks) == 3
    assert list(s) == values
    for v in values:
        assert s.contains(v)
    assert not s.contains(65538)


def test_run_optimize_consecutive():
    s = RoaringSet.from_iterable(range(100_000))
    s.run_optimize()
    kinds = s.container_kinds()
    assert kinds.get("r", 0) >= 1
    assert s.cardinality() == 100_000
    assert s.contains(54_321)
    assert not s.contains(100_000)


def test_run_container_participates_in_ops():
    s = RoaringSet.from_iterable(range(70_000))
    s.run_optimize()
    other = RoaringSet.from_iterable(range(60_000, 80_000))
    inter = s.intersect(other)
    assert inter.cardinality() == 10_000
    union = s.union(other)
    assert union.cardinality() == 80_000
    diff = s.diff(other)
    assert diff.cardinality() == 60_000


def test_run_container_point_ops():
    s = RoaringSet.from_iterable(range(70_000))
    s.run_optimize()
    s.add(100_000)
    s.remove(0)
    assert not s.contains(0)
    assert s.contains(100_000)
    assert s.cardinality() == 70_000


def test_storage_bytes_reflects_compression():
    dense_run = RoaringSet.from_iterable(range(60_000))
    dense_run.run_optimize()
    scattered = RoaringSet.from_iterable(range(0, 120_000, 2))
    assert dense_run.storage_bytes() < scattered.storage_bytes()


def test_empty_chunks_are_dropped():
    s = RoaringSet.from_iterable([5, 70_000])
    s.remove(70_000)
    assert len(s._chunks) == 1
    s.remove(5)
    assert len(s._chunks) == 0
    assert s.is_empty()


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=1 << 20), max_size=50
    )
)
def test_roaring_roundtrip_across_chunks(values):
    s = RoaringSet.from_iterable(values)
    assert list(s) == sorted(set(values))
    s.run_optimize()
    assert list(s) == sorted(set(values))


def test_clone_deep_copies_containers():
    s = RoaringSet.from_iterable([1, 2, 3])
    c = s.clone()
    c.add(4)
    assert not s.contains(4)

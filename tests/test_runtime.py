"""Work–depth tracker, scheduler simulation, PAPI facade, metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SortedSet
from repro.platform import parallel_reorder_seconds
from repro.platform.bench import ROUND_SYNC_SECONDS
from repro.runtime import (
    PAPIW,
    StallModel,
    Timer,
    WorkDepthTracker,
    algorithmic_throughput,
    bootstrap_ci,
    measure,
    peak_memory_bytes,
    simulate_makespan,
    speedup_curve,
)

task_lists = st.lists(
    st.floats(min_value=0.001, max_value=10.0, allow_nan=False), min_size=1,
    max_size=40,
)


class TestWorkDepth:
    def test_sequential_accumulates_both(self):
        t = WorkDepthTracker()
        t.sequential(5)
        t.sequential(3)
        rep = t.report()
        assert rep.work == 8 and rep.depth == 8

    def test_parallel_for_depth_is_max_plus_log(self):
        t = WorkDepthTracker()
        t.parallel_for([1, 2, 7])
        rep = t.report()
        assert rep.work == 10
        assert rep.depth == pytest.approx(7 + math.log2(4))
        assert rep.num_tasks == 3

    def test_runtime_estimate_brent(self):
        t = WorkDepthTracker()
        t.parallel_for([1.0] * 100)
        rep = t.report()
        assert rep.runtime_estimate(1) >= rep.runtime_estimate(10)
        assert rep.runtime_estimate(10) >= rep.depth
        assert rep.speedup_estimate(16) <= 16.0
        with pytest.raises(ValueError):
            rep.runtime_estimate(0)

    def test_parallel_rounds(self):
        t = WorkDepthTracker()
        t.parallel_rounds([[1, 1], [2]])
        assert t.report().num_tasks == 3


class TestScheduler:
    @settings(max_examples=30, deadline=None)
    @given(tasks=task_lists, p=st.integers(1, 32))
    def test_makespan_bounds(self, tasks, p):
        """Greedy schedules satisfy max(W/p, max_task) ≤ T ≤ W/p + max."""
        total = sum(tasks)
        longest = max(tasks)
        for policy in ("static", "dynamic", "stealing"):
            t = simulate_makespan(tasks, p, policy)
            overhead = 0.06 * (total / len(tasks)) * len(tasks)  # stealing pad
            assert t >= total / p - 1e-9
            assert t >= longest - 1e-9 or policy == "static"
            assert t <= total + overhead + 1e-9

    def test_single_thread_is_total(self):
        assert simulate_makespan([1, 2, 3], 1) == 6

    def test_dynamic_beats_static_on_skew(self):
        tasks = [10.0] + [0.1] * 39
        assert simulate_makespan(tasks, 4, "dynamic") <= simulate_makespan(
            tasks, 4, "static"
        )

    def test_stealing_pays_more_overhead_than_dynamic(self):
        tasks = [1.0] * 64
        assert simulate_makespan(tasks, 8, "stealing") >= simulate_makespan(
            tasks, 8, "dynamic"
        )

    def test_empty_tasks(self):
        assert simulate_makespan([], 4) == 0.0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            simulate_makespan([1], 0)
        with pytest.raises(ValueError):
            simulate_makespan([1], 2, "bogus")

    def test_speedup_curve_monotone(self):
        tasks = [1.0] * 128
        curve = speedup_curve(tasks, [1, 2, 4, 8])
        assert curve[0] == pytest.approx(1.0, rel=0.05)
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_amdahl_fraction_caps_speedup(self):
        tasks = [1.0] * 64
        capped = speedup_curve(tasks, [64], sequential_fraction=1.0)[0]
        assert capped < 2.1  # ~2x max with 50% sequential


class TestPAPI:
    def test_start_stop_records_set_ops(self):
        PAPIW.INIT_PARALLEL()
        PAPIW.START()
        a = SortedSet.from_iterable(range(100))
        b = SortedSet.from_iterable(range(50, 150))
        a.intersect(b)
        m = PAPIW.STOP()
        assert m.set_ops >= 1
        assert m.memory_traffic > 0
        assert m.wall_seconds >= 0
        assert PAPIW.last() is m

    def test_stop_without_start(self):
        PAPIW.INIT_PARALLEL()
        with pytest.raises(RuntimeError):
            PAPIW.STOP()

    def test_stall_model_monotone_in_threads(self):
        from repro.runtime.papi import Measurement

        m = Measurement(10, 10, 100_000, 50_000, 0.1)
        model = StallModel()
        prev_count, prev_ratio = 0.0, 0.0
        for p in (1, 2, 4, 8, 16, 32):
            count, ratio = model.stalled_cycles(m, p)
            assert count >= prev_count
            assert ratio >= prev_ratio
            assert 0 <= ratio < 1
            prev_count, prev_ratio = count, ratio

    def test_runtime_scale_flattens(self):
        from repro.runtime.papi import Measurement

        m = Measurement(10, 10, 100_000, 50_000, 0.1)
        model = StallModel(bandwidth_knee=4)
        s8 = model.runtime_scale(m, 8)
        s32 = model.runtime_scale(m, 32)
        # Beyond the knee extra threads barely help.
        assert s8 / s32 < 2.5


class TestMetrics:
    def test_timer(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0

    def test_measure_runs_warmup_and_repeats(self):
        calls = []
        res = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(res.samples) == 3
        assert res.ci_low <= res.mean <= res.ci_high

    def test_throughput(self):
        assert algorithmic_throughput(100, 2.0) == 50.0
        assert algorithmic_throughput(0, 0.0) == 0.0
        assert algorithmic_throughput(5, 0.0) == float("inf")

    def test_bootstrap_ci_contains_mean_of_constant(self):
        lo, hi = bootstrap_ci([3.0, 3.0, 3.0])
        assert lo == hi == 3.0

    def test_peak_memory(self):
        result, peak = peak_memory_bytes(lambda: np.zeros(300_000))
        assert peak >= 300_000 * 8
        assert len(result) == 300_000


class TestSchedulerInvariants:
    """Hypothesis invariants for simulate_makespan (beyond the examples)."""

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, p=st.integers(2, 48))
    def test_dynamic_policies_non_increasing_in_threads(self, tasks, p):
        """More workers never hurt a greedy heap schedule (p ≥ 2)."""
        for policy in ("dynamic", "stealing"):
            assert (
                simulate_makespan(tasks, p + 1, policy)
                <= simulate_makespan(tasks, p, policy) + 1e-12
            )

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, p=st.integers(2, 48))
    def test_dynamic_vs_single_thread_within_overhead(self, tasks, p):
        """Going 1 → p threads can only add per-grab overhead, never work."""
        base = simulate_makespan(tasks, 1)
        for policy, frac in (("dynamic", 0.01), ("stealing", 0.05)):
            slack = frac * (sum(tasks) / len(tasks)) * len(tasks)
            assert simulate_makespan(tasks, p, policy) <= base + slack + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, p=st.integers(1, 48))
    def test_every_policy_at_least_max_task_and_mean_load(self, tasks, p):
        """Makespan ≥ longest single task and ≥ work/p — all policies.

        (The longest task bound holds for static too: chunks are contiguous
        supersets of single tasks.)
        """
        total, longest = sum(tasks), max(tasks)
        for policy in ("static", "dynamic", "stealing"):
            t = simulate_makespan(tasks, p, policy)
            assert t >= longest - 1e-12
            assert t >= total / p - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, p=st.integers(1, 48))
    def test_static_never_exceeds_serial_total(self, tasks, p):
        """Static pays no overhead, so it can never exceed one worker's
        serial execution (but it is *not* monotone in p — contiguous
        chunking can split a heavy region worse at higher p, which is why
        the monotonicity invariant above is asserted only for the greedy
        policies)."""
        assert simulate_makespan(tasks, p, "static") <= sum(tasks) + 1e-12


class TestParallelReorderInvariants:
    """Hypothesis invariants for the reordering-phase parallel model."""

    seqs = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)

    @settings(max_examples=40, deadline=None)
    @given(seq=seqs, rounds=st.integers(1, 64), p=st.integers(1, 127))
    def test_non_increasing_in_threads(self, seq, rounds, p):
        for ordering in ("DGR", "ADG", "DEG", "TRI"):
            a = parallel_reorder_seconds(ordering, seq, rounds, p)
            b = parallel_reorder_seconds(ordering, seq, rounds, p + 1)
            assert b <= a + 1e-15

    @settings(max_examples=40, deadline=None)
    @given(seq=seqs, rounds=st.integers(1, 64), p=st.integers(1, 256))
    def test_dgr_is_sequential_chain(self, seq, rounds, p):
        """Exact peeling has no parallel speedup — the ADG motivation."""
        assert parallel_reorder_seconds("DGR", seq, rounds, p) == seq

    @settings(max_examples=40, deadline=None)
    @given(seq=seqs, rounds=st.integers(1, 64), p=st.integers(1, 256))
    def test_adg_bounds(self, seq, rounds, p):
        """ADG: W/p plus one sync per round, bounded by the serial time
        plus sync and floored by the round synchronization alone."""
        t = parallel_reorder_seconds("ADG", seq, rounds, p)
        assert t >= rounds * ROUND_SYNC_SECONDS
        assert t >= seq / p
        assert t <= seq + rounds * ROUND_SYNC_SECONDS + 1e-15

    @settings(max_examples=40, deadline=None)
    @given(seq=seqs, rounds=st.integers(1, 64), p=st.integers(1, 256))
    def test_single_sort_orderings_pay_one_sync(self, seq, rounds, p):
        for ordering in ("DEG", "TRI", "ID"):
            t = parallel_reorder_seconds(ordering, seq, rounds, p)
            assert t == seq / p + ROUND_SYNC_SECONDS

    @settings(max_examples=40, deadline=None)
    @given(seq=seqs, rounds=st.integers(1, 64), p=st.integers(1, 256))
    def test_more_rounds_never_cheaper(self, seq, rounds, p):
        a = parallel_reorder_seconds("ADG", seq, rounds, p)
        b = parallel_reorder_seconds("ADG", seq, rounds + 1, p)
        assert b >= a

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValueError):
            parallel_reorder_seconds("ADG", 1.0, 4, 0)
        with pytest.raises(ValueError):
            parallel_reorder_seconds("DGR", 1.0, 4, -1)

"""The ``python -m repro serve`` session REPL (platform/serve.py).

One serve process = one MiningSession: repeated query lines must be
warm (served from the session cache), ``suite`` lines must write the
standard artifacts through the very same session, and malformed lines
must fail the request — not the session — and surface in the exit code.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.__main__ import main
from repro.platform.serve import serve_main


def _serve(script: str, *flags: str) -> int:
    return serve_main(list(flags), stdin=io.StringIO(script))


class TestServe:
    def test_repeated_query_is_warm(self, capsys):
        code = _serve(
            "query tc sc-ht-mini backend=bitset\n"
            "query tc sc-ht-mini backend=bitset\n"
            "quit\n"
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("tc on")]
        assert len(lines) == 2
        # Cold then warm: the second line reports hits and zero misses.
        assert "0m)" not in lines[0]
        assert lines[1].endswith("0m)")
        assert "session closing: 2 query(ies)" in out

    def test_suite_command_runs_plan_through_the_session(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.platform.bench as bench

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        code = _serve(
            "suite --smoke\n"
            "stats\n"
            "quit\n"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiment suite" in out
        artifact = tmp_path / "suite_sc-ht-mini.json"
        assert artifact.exists()
        assert json.loads(artifact.read_text())["schema"] == "gms-suite/v2"
        # The stats dump reflects the plan's traffic on the one session.
        stats = json.loads(out[out.index("{"):out.rindex("}") + 1])
        assert stats["plans"] == 1
        assert stats["cache"]["hits"] > 0

    def test_bad_lines_fail_the_exit_code_not_the_session(self, capsys):
        code = _serve(
            "bogus\n"
            "query tc\n"               # missing dataset
            "query tc nope-dataset\n"  # unknown dataset
            "query tc sc-ht-mini backend=bitset\n"
            "quit\n"
        )
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.count("error:") == 3
        # The good query after the bad ones was still served.
        assert "tc on sc-ht-mini" in captured.out

    def test_warm_and_introspection_commands(self, capsys):
        code = _serve(
            "warm sc-ht-mini bitset\n"
            "datasets\nkernels\nhelp\n"
            "query 4clique sc-ht-mini backend=bitset ordering=degeneracy\n"
            "quit\n"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warmed sc-ht-mini" in out
        assert "sc-ht-mini" in out and "kclique" in out
        # The warm command pre-materialized: the query reports no misses.
        (line,) = [l for l in out.splitlines() if l.startswith("4clique on")]
        assert line.endswith("0m)")

    def test_bad_suite_flags_survive_the_session(self, capsys):
        # argparse SystemExit from a bad suite line must fail the request,
        # not tear down the long-lived session.
        code = _serve(
            "suite --bogus-flag\n"
            "query tc sc-ht-mini backend=bitset\n"
            "quit\n"
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "could not parse suite flags" in captured.err
        assert "tc on sc-ht-mini" in captured.out
        assert "session closing" in captured.out

    def test_eof_closes_cleanly(self, capsys):
        assert _serve("query tc sc-ht-mini\n") == 0
        assert "session closing" in capsys.readouterr().out

    def test_wired_into_the_driver(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "serve" in capsys.readouterr().out

    def test_driver_forwards_to_serve(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("quit\n"))
        assert main(["serve", "--no-prompt"]) == 0
        assert "session ready" in capsys.readouterr().out


class TestServeDiagnostics:
    def test_request_failure_logs_traceback_at_debug(self, caplog, capsys):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.platform.serve"):
            code = _serve("query tc no-such-dataset\nquit\n")
        assert code == 1
        # One line for the operator on stderr...
        assert "error:" in capsys.readouterr().err
        # ...and the full traceback in the DEBUG log.
        failures = [r for r in caplog.records
                    if "request failed" in r.message]
        assert failures and all(r.exc_info for r in failures)

    def test_closing_stats_survive_missing_worker_caches(
        self, monkeypatch, capsys
    ):
        # A stats dict with no worker_caches key (older/stubbed session)
        # must not crash the closing line.
        from repro.platform.session import MiningSession

        original = MiningSession.stats

        def stripped(self):
            stats = original(self)
            stats.pop("worker_caches", None)
            return stats

        monkeypatch.setattr(MiningSession, "stats", stripped)
        code = _serve("query tc sc-ht-mini backend=bitset\nquit\n")
        assert code == 0
        out = capsys.readouterr().out
        assert "session closing: 1 query(ies)" in out
        assert "worker caches" not in out

"""The session-centric API: MiningSession, the Query builder, the pool.

Covers the session lifecycle contract (cache/counter state survives
across queries, ``close()`` tears down the resident pool, sessions are
independent), the fluent query surface (compilation to
``ExperimentPlan``/``run_cell``, ordering aliases, budget knobs,
immutability), batch execution (``run_many`` snapshot merging is
associative and pool-served batches match sequential totals), and the
acceptance criteria: warm queries hit the session cache, the resident
pool starts at most once per session, and the session-produced smoke
artifact is suite-diff-identical to the CLI artifact.
"""

from __future__ import annotations

import dataclasses
import json
from functools import reduce

import pytest

from repro.core import counters as _counters
from repro.core.counters import Snapshot
from repro.graph import load_dataset
from repro.platform.runner import diff_payloads
from repro.platform.session import (
    MiningSession,
    Query,
    resolve_ordering_name,
)
from repro.platform.suite import ExperimentPlan
from repro.mining.triangles import triangle_count_node_iterator

#: A tiny two-kernel plan for artifact-equality checks (cheaper than the
#: full smoke matrix, same moving parts: ordering-aware + ordering-free
#: kernels, exact + sketched backends).
TINY_PLAN = ExperimentPlan(
    datasets=("sc-ht-mini",),
    kernels=("tc", "bk"),
    set_classes=("bitset", "bloom"),
    orderings=("DGR",),
    repeats=1,
)


class TestQueryBuilder:
    def test_unknown_kernel_rejected_eagerly(self):
        with MiningSession() as session:
            with pytest.raises(KeyError, match="unknown kernel"):
                session.query("bogus")

    def test_missing_dataset_rejected_at_compile(self):
        with MiningSession() as session:
            with pytest.raises(ValueError, match="no dataset"):
                session.query("tc").run()

    def test_ordering_aliases(self):
        assert resolve_ordering_name("degeneracy") == "DGR"
        assert resolve_ordering_name("approx-degeneracy") == "ADG"
        assert resolve_ordering_name("DGR") == "DGR"
        with pytest.raises(KeyError, match="unknown ordering"):
            resolve_ordering_name("bogus")

    def test_builder_is_immutable_template(self):
        with MiningSession() as session:
            base = session.query("tc").on("sc-ht-mini")
            bloom = base.backend("bloom")
            assert base._backend == "sorted"
            assert bloom._backend == "bloom"
            assert bloom is not base

    def test_compiles_to_single_cell_plan(self):
        with MiningSession(workers=1, schedule="static") as session:
            plan = (
                session.query("kclique", k=5)
                .on("sc-ht-mini")
                .backend("bloom", fpr=0.05)
                .ordering("degeneracy")
                .repeats(2)
                .plan()
            )
            assert plan.datasets == ("sc-ht-mini",)
            assert plan.kernels == ("kclique",)
            assert plan.set_classes == ("bloom",)
            assert plan.orderings == ("DGR",)
            assert plan.k == 5 and plan.repeats == 2
            assert plan.bloom_fpr == 0.05
            # The session's execution knobs travel with the compiled plan.
            assert plan.workers == 1 and plan.schedule == "static"

    def test_ordering_free_kernel_compiles_to_dash_cell(self):
        with MiningSession() as session:
            spec = session.query("tc").on("x").ordering("degree").cell_spec()
            assert spec == ("sorted", "tc", "-")

    def test_override_dicts(self):
        with MiningSession() as session:
            base = session.query("tc").on("sc-ht-mini").backend("bitset")
            variant = base.with_overrides(
                {"kernel": "kclique", "backend": "bloom", "fpr": 0.02,
                 "ordering": "degeneracy", "k": 5}
            )
            assert variant._kernel == "kclique"
            assert variant._backend == "bloom"
            assert variant._bloom_fpr == 0.02
            assert variant._ordering == "DGR"
            assert variant._k == 5
            with pytest.raises(KeyError, match="unknown query override"):
                base.with_overrides({"bogus": 1})


class TestSessionLifecycle:
    def test_query_answers_match_direct_kernel_call(self):
        graph = load_dataset("sc-ht-mini")
        expected = triangle_count_node_iterator(graph)
        with MiningSession() as session:
            result = session.query("tc").on("sc-ht-mini").backend(
                "bitset").run()
            assert result.value == expected
            assert result.exact
            assert result.resolved_class == "BitSet"

    def test_cache_state_survives_across_queries(self):
        with MiningSession() as session:
            q = session.query("tc").on("sc-ht-mini").backend("bitset")
            cold = q.run()
            assert cold.cache_misses > 0
            warm = q.run()
            # Acceptance: the second identical query is served from the
            # session cache.
            assert warm.cache_hits > 0
            assert warm.cache_misses == 0
            stats = session.cache.stats()
            assert stats["hits"] >= warm.cache_hits
            assert stats["set_graphs"] >= 1

    def test_counter_state_accumulates_across_queries(self):
        with MiningSession() as session:
            q = session.query("tc").on("sc-ht-mini").backend("bitset")
            first = q.run()
            after_one = session.counters
            q.run()
            after_two = session.counters
            assert first.counters.set_ops > 0
            assert after_one.set_ops >= first.counters.set_ops
            assert after_two.set_ops > after_one.set_ops
            assert session.queries_run == 2

    def test_sessions_are_independent(self):
        with MiningSession() as first:
            first.query("tc").on("sc-ht-mini").backend("bitset").run()
            assert first.cache.stats()["misses"] > 0
            with MiningSession() as second:
                # A fresh session starts cold: no shared cache, graphs,
                # counters, or traffic stats.
                assert second.cache.stats()["misses"] == 0
                assert second.cache.stats()["hits"] == 0
                assert second.graphs() == []
                assert second.queries_run == 0
                assert second.counters == Snapshot.zero()

    def test_close_refuses_further_work_and_is_idempotent(self):
        session = MiningSession()
        session.query("tc").on("sc-ht-mini").run()
        session.close()
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.query("tc")
        with pytest.raises(RuntimeError, match="closed"):
            session.run_plan(TINY_PLAN)
        # Stats stay readable for final reporting.
        assert session.stats()["closed"] is True

    def test_add_graph_serves_custom_graphs(self):
        graph = load_dataset("sc-ht-mini")
        with MiningSession() as session:
            session.add_graph("mine", graph)
            result = session.query("tc").on("mine").backend("bitset").run()
            assert result.value == triangle_count_node_iterator(graph)
            assert "mine" in session.graphs()

    def test_warm_prematerializes(self):
        with MiningSession() as session:
            session.warm("sc-ht-mini", backends=("bitset",),
                         orderings=("degeneracy",))
            misses_before = session.cache.stats()["misses"]
            result = session.query("4clique").on("sc-ht-mini").backend(
                "bitset").ordering("degeneracy").run()
            assert result.cache_misses == 0
            assert session.cache.stats()["misses"] == misses_before

    def test_backend_resolution_memoized_per_budget(self):
        with MiningSession() as session:
            q = session.query("tc").on("sc-ht-mini")
            a = q.backend("bloom", shared_bits=64 * 300).run()
            b = q.backend("bloom", shared_bits=64 * 300).run()
            c = q.backend("bloom", shared_bits=128 * 300).run()
            assert a.resolved_class == b.resolved_class
            # A different budget must not reuse the memoized class.
            assert c.resolved_class != a.resolved_class


class TestResidentPool:
    @pytest.fixture(scope="class")
    def pool_session(self):
        with MiningSession(workers=2) as session:
            yield session

    def test_pool_started_lazily_and_at_most_once(self, pool_session):
        session = pool_session
        session.query("tc").on("sc-ht-mini").backend("bitset").run()
        assert session.pool_starts == 0  # single queries stay in-process
        batch1 = session.query("tc").on("sc-ht-mini").run_many(
            [{"backend": "bitset"}, {"backend": "bloom"}]
        )
        batch2 = session.query("bk").on("sc-ht-mini").ordering(
            "degeneracy").run_many(
            [{"backend": "bitset"}, {"backend": "bloom"}]
        )
        assert len(batch1) == len(batch2) == 2
        # Acceptance: the resident pool is created at most once.
        assert session.pool_starts == 1
        assert session.stats()["pool"]["resident"]

    def test_batch_values_match_sequential(self, pool_session):
        variants = [{"backend": "bitset"}, {"backend": "bloom"},
                    {"backend": "sorted"}]
        pooled = pool_session.query("tc").on("sc-ht-mini").run_many(variants)
        with MiningSession() as sequential:
            direct = sequential.query("tc").on("sc-ht-mini").run_many(
                variants)
        assert [r.value for r in pooled] == [r.value for r in direct]
        assert [r.resolved_class for r in pooled] == \
            [r.resolved_class for r in direct]

    def test_run_many_merges_snapshots_associatively(self, pool_session):
        variants = [{"backend": "bitset"}, {"backend": "bloom"},
                    {"backend": "sorted"}]
        before = _counters.snapshot()
        results = pool_session.query("tc").on("sc-ht-mini").run_many(
            variants)
        delta = before.delta(_counters.snapshot())
        deltas = [r.counters for r in results]
        left = reduce(Snapshot.merge, deltas, Snapshot.zero())
        right = reduce(
            Snapshot.merge, reversed(deltas), Snapshot.zero()
        )
        # Merge order cannot matter, and the merged total is exactly what
        # the session absorbed into the parent's global block — except the
        # payload-shipping fields, which are parent-side transport
        # accounting (one submit per shard group) and intentionally never
        # attributed to individual variants.
        assert left == right
        assert left == dataclasses.replace(
            delta, payload_bytes_shipped=0, payload_tasks=0
        )
        assert delta.set_ops > 0
        # Distinct backends cannot share a shard: one submit each.
        assert delta.payload_tasks == len(variants)
        assert delta.payload_bytes_shipped > 0

    def test_close_tears_down_the_pool(self):
        with MiningSession(workers=2) as session:
            session.query("tc").on("sc-ht-mini").run_many(
                [{"backend": "bitset"}]
            )
            pool = session._pool
            assert pool is not None
        assert session._pool is None
        assert session.closed
        with pytest.raises(RuntimeError):
            pool.submit(int)  # the executor really was shut down

    def test_custom_graph_after_pool_start_fails_fast(self):
        with MiningSession(workers=2) as session:
            session.query("tc").on("sc-ht-mini").run_many(
                [{"backend": "bitset"}]
            )
            session.add_graph("late", load_dataset("sc-ht-mini"))
            with pytest.raises(RuntimeError, match="resident pool"):
                session.query("tc").on("late").run_many(
                    [{"backend": "bitset"}]
                )

    def test_shipped_custom_graph_survives_worker_lru_churn(self):
        # A shipped session-local graph is pinned in the workers: churning
        # more registry datasets than the per-worker LRU capacity through
        # the pool must not evict it (workers cannot reload it by name).
        graph = load_dataset("antcolony5-mini")
        expected = triangle_count_node_iterator(graph)
        churn = ("sc-ht-mini", "antcolony6-mini", "jester2-mini",
                 "mbeacxc-mini", "gearbox-mini")
        with MiningSession(workers=2) as session:
            session.add_graph("mine", graph)
            first = session.query("tc").on("mine").run_many(
                [{"backend": "bitset"}]
            )
            for dataset in churn:
                session.query("tc").on(dataset).run_many(
                    [{"backend": "bitset"}]
                )
            again = session.query("tc").on("mine").run_many(
                [{"backend": "bitset"}]
            )
            assert first[0].value == again[0].value == expected

    def test_shipped_graph_cannot_be_rebound_on_a_running_pool(self):
        with MiningSession(workers=2) as session:
            session.add_graph("mine", load_dataset("sc-ht-mini"))
            session.query("tc").on("mine").run_many([{"backend": "bitset"}])
            with pytest.raises(RuntimeError, match="re-bound"):
                session.add_graph("mine", load_dataset("gearbox-mini"))

    def test_rebinding_after_pool_start_reports_divergence(self):
        # A known name re-bound after the pool starts means the workers
        # never saw the replacement graph.  The session must report the
        # re-binding itself — not the generic not-shipped error, and
        # never a silent worker-side fallback to something else.
        with MiningSession(workers=2) as session:
            session.query("tc").on("sc-ht-mini").run_many(
                [{"backend": "bitset"}]
            )
            session.add_graph("late", load_dataset("antcolony5-mini"))
            session.add_graph("late", load_dataset("gearbox-mini"))
            with pytest.raises(RuntimeError, match="re-bound"):
                session.query("tc").on("late").run_many(
                    [{"backend": "bitset"}]
                )

    def test_unpicklable_graph_drops_only_its_own_warm_entry(self):
        # The warm payload pickles per dataset: one graph that cannot
        # cross the process boundary loses only its own entry, while
        # every other custom graph still ships with full warm state.
        class LocalGraph(type(load_dataset("sc-ht-mini"))):
            pass  # locally defined: unpicklable by reference

        good = load_dataset("antcolony5-mini")
        base = load_dataset("sc-ht-mini")
        weird = LocalGraph(base.offsets, base.adjacency,
                           directed=base.directed)
        with MiningSession(workers=2) as session:
            session.add_graph("good", good)
            session.add_graph("weird", weird)
            results = session.query("tc").on("good").run_many(
                [{"backend": "bitset"}]
            )
            assert results[0].value == triangle_count_node_iterator(good)
            assert "good" in session._shipped
            assert "weird" not in session._shipped
            with pytest.raises(RuntimeError, match="not shipped"):
                session.query("tc").on("weird").run_many(
                    [{"backend": "bitset"}]
                )

    def test_run_many_batches_same_materialization_variants(self):
        # Variants that share (dataset, backend, ordering) and the
        # plan-level knobs ride ONE pool shard: a single submit (one
        # payload task) whose per-cell counter deltas come back split
        # per variant.
        with MiningSession(workers=2) as session:
            session.query("tc").on("sc-ht-mini").run_many(
                [{"backend": "bitset"}]
            )  # pool is up; later deltas are pure submits
            before = _counters.snapshot()
            results = session.query("bk").on("sc-ht-mini").backend(
                "bitset").run_many([{"kernel": "4clique"}, {"kernel": "bk"}])
            delta = before.delta(_counters.snapshot())
            assert delta.payload_tasks == 1
            assert len(results) == 2
            assert all(r.counters.set_ops > 0 for r in results)
            # Distinct orderings break the shard: two submits.
            before = _counters.snapshot()
            session.query("bk").on("sc-ht-mini").backend("bitset").run_many(
                [{"ordering": "DGR"}, {"ordering": "ADG"}]
            )
            assert before.delta(_counters.snapshot()).payload_tasks == 2

    def test_backend_memo_tracks_graph_identity(self):
        # Re-binding a name to a different graph must re-resolve budgeted
        # backends: a shared Bloom budget is split per vertex, so the
        # resolved class depends on the graph's size, not just its name.
        small = load_dataset("antcolony5-mini")    # n = 152
        large = load_dataset("gearbox-mini")       # n = 1200
        with MiningSession() as session:
            session.add_graph("g", small)
            a = session.query("tc").on("g").backend(
                "bloom", shared_bits=1 << 20).run()
            session.add_graph("g", large)
            b = session.query("tc").on("g").backend(
                "bloom", shared_bits=1 << 20).run()
            assert a.resolved_class != b.resolved_class


class TestSessionPlans:
    def test_run_plan_artifact_matches_cli_artifact(self, tmp_path,
                                                    monkeypatch, capsys):
        import repro.platform.bench as bench
        from repro.__main__ import main

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        assert main(["suite", "--smoke"]) == 0
        capsys.readouterr()
        cli_payload = json.loads(
            (tmp_path / "suite_sc-ht-mini.json").read_text()
        )
        with MiningSession() as session:
            payload = session.run_plan(ExperimentPlan.smoke())[0]
        # Acceptance: the session-produced smoke artifact is
        # suite-diff-identical to the CLI sequential artifact.
        assert diff_payloads(cli_payload, payload) == []

    def test_second_plan_run_is_cache_warm(self):
        with MiningSession() as session:
            session.run_plan(TINY_PLAN)
            stats_cold = dict(session.cache.stats())
            session.run_plan(TINY_PLAN)
            stats_warm = session.cache.stats()
            # Acceptance: re-running the same plan adds hits, not misses.
            assert stats_warm["hits"] > stats_cold["hits"]
            assert stats_warm["misses"] == stats_cold["misses"]
            assert session.plans_run == 2

    def test_session_execution_knobs_govern_plans(self):
        with MiningSession(workers=1) as session:
            plan = ExperimentPlan(
                datasets=("sc-ht-mini",), kernels=("tc",),
                set_classes=("bitset",), orderings=("DGR",),
                workers=7, schedule="static",
            )
            payload = session.run_plan(plan)[0]
            assert payload["execution"]["workers"] == 1
            assert payload["execution"]["schedule"] == "sequential"

    def test_parallel_plan_through_resident_pool_is_deterministic(self):
        with MiningSession() as sequential:
            expected = sequential.run_plan(TINY_PLAN)[0]
        with MiningSession(workers=2) as session:
            first = session.run_plan(TINY_PLAN)[0]
            second = session.run_plan(TINY_PLAN)[0]
            assert session.pool_starts == 1
            assert diff_payloads(expected, first) == []
            assert diff_payloads(expected, second) == []
            # Each artifact reports only its own run's cache deltas; the
            # second run was served by warm workers, so it shows mostly
            # hits (a run-2 cell may still land on a worker that never
            # materialized that backend under dynamic scheduling, so a
            # few misses are legitimate — but strictly fewer than cold).
            cold, warm = (first["materialization"],
                          second["materialization"])
            assert cold["misses"] > 0
            assert warm["hits"] > 0
            assert warm["misses"] < warm["hits"]
            assert warm["misses"] < cold["misses"]
            # ...and the session-level accumulator saw the pool traffic.
            worker_caches = session.stats()["worker_caches"]
            assert worker_caches is not None
            assert worker_caches["hits"] >= warm["hits"]

    def test_materialization_attributed_per_dataset(self):
        # One session cache serves every dataset, but each dataset's
        # artifact must report only its own run's cache work — the old
        # per-dataset-cache behavior, recovered via stats deltas.
        plan = ExperimentPlan(
            datasets=("sc-ht-mini", "antcolony5-mini"),
            kernels=("tc",), set_classes=("bitset",), orderings=("DGR",),
        )
        with MiningSession() as session:
            first, second = session.run_plan(plan)
            for payload in (first, second):
                mat = payload["materialization"]
                # tc on bitset + sorted reference: exactly one set-graph
                # materialization per backend for *this* dataset.
                assert mat["misses"] == 2
            # A warm re-run of the same plan attributes only hits.
            warm_first, warm_second = session.run_plan(plan)
            assert warm_first["materialization"]["misses"] == 0
            assert warm_first["materialization"]["hits"] > 0
            assert warm_second["materialization"]["misses"] == 0

    def test_pool_prewarm_ships_parent_materializations(self):
        with MiningSession(workers=2) as session:
            # Warm the *parent* cache before the pool exists; the pool's
            # workers inherit the payload at start and report hits without
            # ever materializing locally.
            session.warm("sc-ht-mini", backends=("bitset",))
            plan = ExperimentPlan(
                datasets=("sc-ht-mini",), kernels=("tc",),
                set_classes=("bitset",), orderings=("DGR",),
            )
            payload = session.run_plan(plan)[0]
            mat = payload["materialization"]
            assert mat["hits"] > 0
            # tc on bitset + the sorted reference: the bitset set-graph came
            # pre-seeded, only the reference backend's had to be built.
            assert mat["misses"] <= 1 * mat["workers"]

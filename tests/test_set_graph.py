"""Set-centric graph representation (Listing 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BitSet, RoaringSet, SortedSet
from repro.graph import SetGraph, build_set_graph, build_undirected
from tests.conftest import random_csr


class TestSetGraph:
    def test_build_preserves_structure(self, set_cls):
        csr, _ = random_csr(30, 120, 61)
        sg = build_set_graph(csr, set_cls)
        assert sg.num_nodes == csr.num_nodes
        assert sg.num_edges == csr.num_edges
        assert sg.set_cls is set_cls
        for v in range(30):
            assert sg.out_degree(v) == csr.out_degree(v)
            assert np.array_equal(sg.out_neigh(v).to_array(),
                                  csr.out_neigh(v))

    def test_has_edge_symmetric(self):
        csr, G = random_csr(25, 90, 62)
        sg = build_set_graph(csr, BitSet)
        for u, v in list(G.edges())[:20]:
            assert sg.has_edge(u, v)
            assert sg.has_edge(v, u)
        assert not sg.has_edge(0, 0)

    def test_directed_edge_count(self):
        from repro.graph import build_directed

        g = build_directed(4, [(0, 1), (1, 2), (2, 3)])
        sg = build_set_graph(g, SortedSet)
        assert sg.directed
        assert sg.num_edges == 3

    def test_storage_accounting_varies_by_class(self):
        csr, _ = random_csr(60, 240, 63)
        sizes = {
            cls.__name__: build_set_graph(csr, cls).storage_bytes()
            for cls in (SortedSet, BitSet, RoaringSet)
        }
        assert all(size > 0 for size in sizes.values())
        # Dense bitvectors cost ~n bits per nonempty neighborhood; sorted
        # arrays cost 8 bytes per element — different orders entirely.
        assert len(set(sizes.values())) >= 2

    def test_vertices_iterator(self):
        g = build_undirected(5, [(0, 1)])
        sg = build_set_graph(g, SortedSet)
        assert list(sg.vertices()) == [0, 1, 2, 3, 4]

    def test_repr(self):
        g = build_undirected(3, [(0, 1)])
        assert "SetGraph" in repr(build_set_graph(g, BitSet))

    def test_mining_over_set_graph_neighborhoods(self):
        """SetGraph neighborhoods drive set-algebra kernels directly."""
        csr, G = random_csr(25, 110, 64)
        sg = build_set_graph(csr, BitSet)
        import networkx as nx

        expected = sum(nx.triangles(G).values()) // 6  # per-arc halves
        total = 0
        for v in range(25):
            sv = sg.out_neigh(v)
            for w in csr.out_neigh(v).tolist():
                total += sv.intersect_count(sg.out_neigh(w))
        assert total // 6 == sum(nx.triangles(G).values()) // 3

"""Unit tests of the Listing-1 Set interface across all representations.

The class matrix comes from ``repro.core.registry.SET_CLASSES`` (via the
``any_set_cls`` fixture), so user-registered and approximate backends are
covered automatically.  Exact classes (``cls.IS_EXACT``) get strict
equality checks; approximate classes are checked against their one-sided
guarantees: materialized intersections are supersets of the truth (bounded
by the left operand), differences are subsets, ``contains`` never reports
a false negative, and count estimates stay inside their always-valid
clamping ranges.  Iteration, ``cardinality``, ``to_array``, ``clone`` and
``add``/``remove`` operate on the exact member store of every backend, so
those checks stay strict for all classes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BitSet,
    RoaringSet,
    SetBase,
    SortedSet,
    get_set_class,
    registered_set_classes,
)
from repro.core.registry import SET_CLASSES

ALL_SET_CLASSES = registered_set_classes()


class TestConstructors:
    def test_empty(self, any_set_cls):
        s = any_set_cls.empty()
        assert s.cardinality() == 0
        assert s.is_empty()
        assert not s
        assert list(s) == []

    def test_single(self, any_set_cls):
        s = any_set_cls.single(7)
        assert list(s) == [7]
        assert s.cardinality() == 1

    def test_range(self, any_set_cls):
        assert list(any_set_cls.range(5)) == [0, 1, 2, 3, 4]
        assert list(any_set_cls.range(0)) == []

    def test_from_iterable_dedupes(self, any_set_cls):
        s = any_set_cls.from_iterable([3, 1, 3, 2, 1])
        assert list(s) == [1, 2, 3]

    def test_from_sorted_array(self, any_set_cls):
        arr = np.array([2, 5, 9], dtype=np.int64)
        s = any_set_cls.from_sorted_array(arr)
        assert list(s) == [2, 5, 9]

    def test_from_vector_list(self, any_set_cls):
        # The paper's constructor from a std::vector — a Python list here.
        s = any_set_cls.from_iterable([10, 20, 30])
        assert s.cardinality() == 3


class TestAlgebra:
    A = [1, 3, 5, 7, 9]
    B = [3, 4, 5, 6]

    def make(self, cls, values):
        return cls.from_iterable(values)

    def test_intersect(self, any_set_cls):
        a, b = self.make(any_set_cls, self.A), self.make(any_set_cls, self.B)
        got = set(a.intersect(b))
        if any_set_cls.IS_EXACT:
            assert got == {3, 5}
        else:
            assert {3, 5} <= got <= set(self.A)
        # operands unchanged
        assert list(a) == self.A
        assert list(b) == sorted(self.B)

    def test_intersect_count(self, any_set_cls):
        a, b = self.make(any_set_cls, self.A), self.make(any_set_cls, self.B)
        count = a.intersect_count(b)
        if any_set_cls.IS_EXACT:
            assert count == 2
        else:
            assert 0 <= count <= min(len(a), len(b))

    def test_union(self, any_set_cls):
        a, b = self.make(any_set_cls, self.A), self.make(any_set_cls, self.B)
        got = set(a.union(b))
        expected = {1, 3, 4, 5, 6, 7, 9}
        if any_set_cls.IS_EXACT:
            assert got == expected
        else:
            assert expected <= got

    def test_union_count(self, any_set_cls):
        a, b = self.make(any_set_cls, self.A), self.make(any_set_cls, self.B)
        count = a.union_count(b)
        if any_set_cls.IS_EXACT:
            assert count == 7
        else:
            assert max(len(a), len(b)) <= count <= len(a) + len(b)

    def test_diff(self, any_set_cls):
        a, b = self.make(any_set_cls, self.A), self.make(any_set_cls, self.B)
        if any_set_cls.IS_EXACT:
            assert list(a.diff(b)) == [1, 7, 9]
            assert list(b.diff(a)) == [4, 6]
        else:
            assert set(a.diff(b)) <= {1, 7, 9}
            assert set(b.diff(a)) <= {4, 6}

    def test_inplace_variants(self, any_set_cls):
        a = self.make(any_set_cls, self.A)
        a.intersect_inplace(self.make(any_set_cls, self.B))
        if any_set_cls.IS_EXACT:
            assert list(a) == [3, 5]
        else:
            assert {3, 5} <= set(a) <= set(self.A)
        b = self.make(any_set_cls, self.A)
        b.union_inplace(self.make(any_set_cls, [99]))
        if any_set_cls.IS_EXACT:
            assert list(b) == self.A + [99]
        else:
            assert set(self.A) | {99} <= set(b)
        c = self.make(any_set_cls, self.A)
        c.diff_inplace(self.make(any_set_cls, [5]))
        if any_set_cls.IS_EXACT:
            assert list(c) == [1, 3, 7, 9]
        else:
            assert set(c) <= {1, 3, 7, 9}

    def test_element_overloads(self, any_set_cls):
        # diff_element/union_element ride on clone + add/remove, which act
        # on the exact member store of every backend — strict for all.
        a = self.make(any_set_cls, self.A)
        assert list(a.diff_element(3)) == [1, 5, 7, 9]
        assert list(a.union_element(2)) == [1, 2, 3, 5, 7, 9]
        assert list(a) == self.A  # non-mutating overloads

    def test_operators(self, any_set_cls):
        a, b = self.make(any_set_cls, self.A), self.make(any_set_cls, self.B)
        if any_set_cls.IS_EXACT:
            assert list(a & b) == [3, 5]
            assert list(a | b) == [1, 3, 4, 5, 6, 7, 9]
            assert list(a - b) == [1, 7, 9]
        else:
            assert {3, 5} <= set(a & b) <= set(self.A)
            assert {1, 3, 4, 5, 6, 7, 9} <= set(a | b)
            assert set(a - b) <= {1, 7, 9}

    def test_empty_operand(self, any_set_cls):
        a = self.make(any_set_cls, self.A)
        e = any_set_cls.empty()
        assert set(a.union(e)) >= set(self.A)
        assert list(e.diff(a)) == []
        assert set(a.intersect(e)) <= set(self.A)
        assert set(a.diff(e)) <= set(self.A)
        if any_set_cls.IS_EXACT:
            assert list(a.union(e)) == self.A
            assert list(a.intersect(e)) == []
            assert list(a.diff(e)) == self.A


class TestPointOps:
    def test_contains(self, any_set_cls):
        s = any_set_cls.from_iterable([2, 4, 6])
        # Members must always be found (no false negatives, Bloom included).
        assert s.contains(4)
        assert 4 in s
        if any_set_cls.IS_EXACT:
            assert not s.contains(5)
            assert 5 not in s

    def test_add_remove(self, any_set_cls):
        s = any_set_cls.from_iterable([1, 3])
        s.add(2)
        assert list(s) == [1, 2, 3]
        s.add(2)  # idempotent
        assert list(s) == [1, 2, 3]
        s.remove(1)
        assert list(s) == [2, 3]
        s.remove(99)  # absent: no-op, like Listing 1's semantics
        assert list(s) == [2, 3]

    def test_len_protocol(self, any_set_cls):
        assert len(any_set_cls.from_iterable([5, 6])) == 2


class TestOtherMethods:
    def test_clone_is_independent(self, any_set_cls):
        a = any_set_cls.from_iterable([1, 2, 3])
        b = a.clone()
        b.add(9)
        assert list(a) == [1, 2, 3]
        assert list(b) == [1, 2, 3, 9]

    def test_to_array(self, any_set_cls):
        arr = any_set_cls.from_iterable([5, 1, 9]).to_array()
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 5, 9]

    def test_equality(self, any_set_cls):
        a = any_set_cls.from_iterable([1, 2])
        b = any_set_cls.from_iterable([2, 1])
        c = any_set_cls.from_iterable([1, 3])
        assert a == b
        assert a != c
        assert a != "not a set"

    def test_cross_class_equality(self):
        a = SortedSet.from_iterable([1, 2, 3])
        b = BitSet.from_iterable([1, 2, 3])
        assert a == b

    def test_repr_is_readable(self, any_set_cls):
        assert "1" in repr(any_set_cls.from_iterable([1]))


class TestMixedRepresentations:
    """Binary ops accept a set of any other class (implicit conversion)."""

    @pytest.mark.parametrize(
        "other_cls", ALL_SET_CLASSES, ids=lambda c: c.__name__
    )
    def test_mixed_intersect(self, any_set_cls, other_cls):
        a = any_set_cls.from_iterable([1, 2, 3, 4])
        b = other_cls.from_iterable([3, 4, 5])
        if any_set_cls.IS_EXACT and other_cls.IS_EXACT:
            assert list(a.intersect(b)) == [3, 4]
            assert list(a.union(b)) == [1, 2, 3, 4, 5]
            assert list(a.diff(b)) == [1, 2]
        else:
            assert {3, 4} <= set(a.intersect(b)) <= {1, 2, 3, 4}
            assert {1, 2, 3, 4, 5} <= set(a.union(b))
            assert set(a.diff(b)) <= {1, 2}


class TestRegistry:
    def test_lookup(self):
        assert get_set_class("sorted") is SortedSet
        assert get_set_class("roaring") is RoaringSet

    def test_approx_backends_registered(self):
        from repro.approx import BloomFilterSet, KMVSketchSet

        assert get_set_class("bloom") is BloomFilterSet
        assert get_set_class("kmv") is KMVSketchSet
        assert not BloomFilterSet.IS_EXACT
        assert not KMVSketchSet.IS_EXACT
        for cls in (BloomFilterSet, KMVSketchSet):
            assert issubclass(cls, SetBase)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown set class"):
            get_set_class("nope")

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_set_class("not-a-backend")
        message = str(excinfo.value)
        for name in SET_CLASSES:
            assert name in message

    def test_register_rejects_non_set(self):
        from repro.core import register_set_class

        with pytest.raises(TypeError, match="subclass SetBase"):
            register_set_class("bad", int)
        with pytest.raises(TypeError, match="subclass SetBase"):
            register_set_class("bad", SortedSet.empty())  # instance, not class
        assert "bad" not in SET_CLASSES

    def test_register_user_class_is_picked_up(self):
        from repro.approx import bloom_set_class
        from repro.core import register_set_class

        custom = bloom_set_class(bits_per_element=8, name="CustomBloom")
        register_set_class("custom-bloom", custom)
        try:
            assert get_set_class("custom-bloom") is custom
        finally:
            del SET_CLASSES["custom-bloom"]

"""Unit tests of the Listing-1 Set interface across all representations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BitSet, HashSet, RoaringSet, SortedSet, get_set_class


class TestConstructors:
    def test_empty(self, set_cls):
        s = set_cls.empty()
        assert s.cardinality() == 0
        assert s.is_empty()
        assert not s
        assert list(s) == []

    def test_single(self, set_cls):
        s = set_cls.single(7)
        assert list(s) == [7]
        assert s.cardinality() == 1

    def test_range(self, set_cls):
        assert list(set_cls.range(5)) == [0, 1, 2, 3, 4]
        assert list(set_cls.range(0)) == []

    def test_from_iterable_dedupes(self, set_cls):
        s = set_cls.from_iterable([3, 1, 3, 2, 1])
        assert list(s) == [1, 2, 3]

    def test_from_sorted_array(self, set_cls):
        arr = np.array([2, 5, 9], dtype=np.int64)
        s = set_cls.from_sorted_array(arr)
        assert list(s) == [2, 5, 9]

    def test_from_vector_list(self, set_cls):
        # The paper's constructor from a std::vector — a Python list here.
        s = set_cls.from_iterable([10, 20, 30])
        assert s.cardinality() == 3


class TestAlgebra:
    A = [1, 3, 5, 7, 9]
    B = [3, 4, 5, 6]

    def make(self, set_cls, values):
        return set_cls.from_iterable(values)

    def test_intersect(self, set_cls):
        a, b = self.make(set_cls, self.A), self.make(set_cls, self.B)
        assert list(a.intersect(b)) == [3, 5]
        # operands unchanged
        assert list(a) == self.A
        assert list(b) == sorted(self.B)

    def test_intersect_count(self, set_cls):
        a, b = self.make(set_cls, self.A), self.make(set_cls, self.B)
        assert a.intersect_count(b) == 2

    def test_union(self, set_cls):
        a, b = self.make(set_cls, self.A), self.make(set_cls, self.B)
        assert list(a.union(b)) == [1, 3, 4, 5, 6, 7, 9]

    def test_union_count(self, set_cls):
        a, b = self.make(set_cls, self.A), self.make(set_cls, self.B)
        assert a.union_count(b) == 7

    def test_diff(self, set_cls):
        a, b = self.make(set_cls, self.A), self.make(set_cls, self.B)
        assert list(a.diff(b)) == [1, 7, 9]
        assert list(b.diff(a)) == [4, 6]

    def test_inplace_variants(self, set_cls):
        a = self.make(set_cls, self.A)
        a.intersect_inplace(self.make(set_cls, self.B))
        assert list(a) == [3, 5]
        a.union_inplace(self.make(set_cls, [99]))
        assert list(a) == [3, 5, 99]
        a.diff_inplace(self.make(set_cls, [5]))
        assert list(a) == [3, 99]

    def test_element_overloads(self, set_cls):
        a = self.make(set_cls, self.A)
        assert list(a.diff_element(3)) == [1, 5, 7, 9]
        assert list(a.union_element(2)) == [1, 2, 3, 5, 7, 9]
        assert list(a) == self.A  # non-mutating overloads

    def test_operators(self, set_cls):
        a, b = self.make(set_cls, self.A), self.make(set_cls, self.B)
        assert list(a & b) == [3, 5]
        assert list(a | b) == [1, 3, 4, 5, 6, 7, 9]
        assert list(a - b) == [1, 7, 9]

    def test_empty_operand(self, set_cls):
        a = self.make(set_cls, self.A)
        e = set_cls.empty()
        assert list(a.intersect(e)) == []
        assert list(a.union(e)) == self.A
        assert list(a.diff(e)) == self.A
        assert list(e.diff(a)) == []


class TestPointOps:
    def test_contains(self, set_cls):
        s = set_cls.from_iterable([2, 4, 6])
        assert s.contains(4)
        assert not s.contains(5)
        assert 4 in s
        assert 5 not in s

    def test_add_remove(self, set_cls):
        s = set_cls.from_iterable([1, 3])
        s.add(2)
        assert list(s) == [1, 2, 3]
        s.add(2)  # idempotent
        assert list(s) == [1, 2, 3]
        s.remove(1)
        assert list(s) == [2, 3]
        s.remove(99)  # absent: no-op, like Listing 1's semantics
        assert list(s) == [2, 3]

    def test_len_protocol(self, set_cls):
        assert len(set_cls.from_iterable([5, 6])) == 2


class TestOtherMethods:
    def test_clone_is_independent(self, set_cls):
        a = set_cls.from_iterable([1, 2, 3])
        b = a.clone()
        b.add(9)
        assert list(a) == [1, 2, 3]
        assert list(b) == [1, 2, 3, 9]

    def test_to_array(self, set_cls):
        arr = set_cls.from_iterable([5, 1, 9]).to_array()
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 5, 9]

    def test_equality(self, set_cls):
        a = set_cls.from_iterable([1, 2])
        b = set_cls.from_iterable([2, 1])
        c = set_cls.from_iterable([1, 3])
        assert a == b
        assert a != c
        assert a != "not a set"

    def test_cross_class_equality(self):
        a = SortedSet.from_iterable([1, 2, 3])
        b = BitSet.from_iterable([1, 2, 3])
        assert a == b

    def test_repr_is_readable(self, set_cls):
        assert "1" in repr(set_cls.from_iterable([1]))


class TestMixedRepresentations:
    """Binary ops accept a set of any other class (implicit conversion)."""

    @pytest.mark.parametrize("other_cls", [SortedSet, BitSet, RoaringSet, HashSet])
    def test_mixed_intersect(self, set_cls, other_cls):
        a = set_cls.from_iterable([1, 2, 3, 4])
        b = other_cls.from_iterable([3, 4, 5])
        assert list(a.intersect(b)) == [3, 4]
        assert list(a.union(b)) == [1, 2, 3, 4, 5]
        assert list(a.diff(b)) == [1, 2]


class TestRegistry:
    def test_lookup(self):
        assert get_set_class("sorted") is SortedSet
        assert get_set_class("roaring") is RoaringSet

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown set class"):
            get_set_class("nope")

    def test_register_rejects_non_set(self):
        from repro.core import register_set_class

        with pytest.raises(TypeError):
            register_set_class("bad", int)

"""Property-based tests: every representation agrees with Python's set."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BitSet,
    CompressedSortedSet,
    HashSet,
    RoaringSet,
    SortedSet,
)

CLASSES = [SortedSet, BitSet, RoaringSet, HashSet, CompressedSortedSet]

elements = st.integers(min_value=0, max_value=200_000)
element_lists = st.lists(elements, max_size=60)


@settings(max_examples=60, deadline=None)
@given(a=element_lists, b=element_lists)
def test_binary_ops_match_python_sets(a, b):
    ref_a, ref_b = set(a), set(b)
    for cls in CLASSES:
        sa, sb = cls.from_iterable(a), cls.from_iterable(b)
        assert set(sa.intersect(sb)) == ref_a & ref_b
        assert set(sa.union(sb)) == ref_a | ref_b
        assert set(sa.diff(sb)) == ref_a - ref_b
        assert sa.intersect_count(sb) == len(ref_a & ref_b)
        assert sa.union_count(sb) == len(ref_a | ref_b)


@settings(max_examples=60, deadline=None)
@given(values=element_lists, probe=elements)
def test_contains_matches(values, probe):
    ref = set(values)
    for cls in CLASSES:
        s = cls.from_iterable(values)
        assert s.contains(probe) == (probe in ref)
        assert s.cardinality() == len(ref)


# A random op sequence applied to all representations stays in lockstep.
op = st.sampled_from(["add", "remove", "union_inplace", "diff_inplace",
                      "intersect_inplace"])
ops = st.lists(st.tuples(op, element_lists), max_size=12)


@settings(max_examples=40, deadline=None)
@given(initial=element_lists, sequence=ops)
def test_op_sequences_stay_in_lockstep(initial, sequence):
    ref = set(initial)
    sets = {cls: cls.from_iterable(initial) for cls in CLASSES}
    for name, payload in sequence:
        if name == "add":
            x = payload[0] if payload else 0
            ref.add(x)
            for s in sets.values():
                s.add(x)
        elif name == "remove":
            x = payload[0] if payload else 0
            ref.discard(x)
            for s in sets.values():
                s.remove(x)
        else:
            other_ref = set(payload)
            if name == "union_inplace":
                ref |= other_ref
            elif name == "diff_inplace":
                ref -= other_ref
            else:
                ref &= other_ref
            for cls, s in sets.items():
                getattr(s, name)(cls.from_iterable(payload))
        for cls, s in sets.items():
            assert set(s) == ref, (cls.__name__, name)


@settings(max_examples=50, deadline=None)
@given(values=element_lists)
def test_iteration_is_sorted_and_to_array_roundtrips(values):
    for cls in CLASSES:
        s = cls.from_iterable(values)
        out = list(s)
        assert out == sorted(set(values))
        assert np.array_equal(s.to_array(), np.array(out, dtype=np.int64))
        # Rebuilding from to_array reproduces the set.
        assert cls.from_sorted_array(s.to_array()) == s

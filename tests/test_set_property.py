"""Property-based tests: every registered representation vs Python's set.

The matrix is derived from ``repro.core.registry.SET_CLASSES`` so that new
backends — including user classes added via ``register_set_class`` — are
tested automatically.  Exact classes must agree with Python's ``set``
verbatim; approximate classes (``cls.IS_EXACT`` false) are held to their
one-sided guarantees instead:

* materialized ``intersect`` ⊇ truth (bounded by the left operand),
  ``diff`` ⊆ truth, ``union`` ⊇ truth;
* ``contains`` has no false negatives;
* ``*_count`` estimates stay inside their always-valid clamp ranges;
* iteration/cardinality/``to_array``/``clone`` reflect the exact member
  store (sketch-augmented design), hence stay strict everywhere.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import registered_set_classes

CLASSES = registered_set_classes()
EXACT_CLASSES = [cls for cls in CLASSES if cls.IS_EXACT]

elements = st.integers(min_value=0, max_value=200_000)
element_lists = st.lists(elements, max_size=60)


@settings(max_examples=60, deadline=None)
@given(a=element_lists, b=element_lists)
def test_binary_ops_match_python_sets(a, b):
    ref_a, ref_b = set(a), set(b)
    for cls in CLASSES:
        sa, sb = cls.from_iterable(a), cls.from_iterable(b)
        inter, uni, dif = set(sa.intersect(sb)), set(sa.union(sb)), set(sa.diff(sb))
        if cls.IS_EXACT:
            assert inter == ref_a & ref_b
            assert uni == ref_a | ref_b
            assert dif == ref_a - ref_b
            assert sa.intersect_count(sb) == len(ref_a & ref_b)
            assert sa.union_count(sb) == len(ref_a | ref_b)
        else:
            assert ref_a & ref_b <= inter <= ref_a, cls.__name__
            assert ref_a | ref_b <= uni, cls.__name__
            assert dif <= ref_a - ref_b, cls.__name__
            assert 0 <= sa.intersect_count(sb) <= min(len(ref_a), len(ref_b))
            assert (
                max(len(ref_a), len(ref_b))
                <= sa.union_count(sb)
                <= len(ref_a) + len(ref_b)
            )


@settings(max_examples=60, deadline=None)
@given(a=element_lists, b=element_lists)
def test_count_variants_match_python_sets(a, b):
    ref_a, ref_b = set(a), set(b)
    for cls in CLASSES:
        sa, sb = cls.from_iterable(a), cls.from_iterable(b)
        if cls.IS_EXACT:
            assert sa.union_count(sb) == len(ref_a | ref_b)
            assert sa.diff_count(sb) == len(ref_a - ref_b)
            assert sb.diff_count(sa) == len(ref_b - ref_a)
        else:
            assert 0 <= sa.diff_count(sb) <= len(ref_a)
            assert 0 <= sb.diff_count(sa) <= len(ref_b)
        # Count variants never mutate their operands.
        assert set(sa) == ref_a and set(sb) == ref_b


@settings(max_examples=60, deadline=None)
@given(a=element_lists, b=element_lists)
def test_inplace_ops_match_python_sets(a, b):
    ref_a, ref_b = set(a), set(b)
    for cls in CLASSES:
        other = cls.from_iterable(b)
        si = cls.from_iterable(a)
        si.intersect_inplace(other)
        su = cls.from_iterable(a)
        su.union_inplace(other)
        sd = cls.from_iterable(a)
        sd.diff_inplace(other)
        if cls.IS_EXACT:
            assert set(si) == ref_a & ref_b
            assert set(su) == ref_a | ref_b
            assert set(sd) == ref_a - ref_b
        else:
            assert ref_a & ref_b <= set(si) <= ref_a, cls.__name__
            assert ref_a | ref_b <= set(su), cls.__name__
            assert set(sd) <= ref_a - ref_b, cls.__name__
        # The in-place ops must leave the other operand untouched.
        assert set(other) == ref_b


@settings(max_examples=60, deadline=None)
@given(values=element_lists, probe=elements)
def test_element_overloads_match_python_sets(values, probe):
    # diff_element/union_element ride on clone + add/remove on the exact
    # member store, so they are strict for approximate classes too.
    ref = set(values)
    for cls in CLASSES:
        s = cls.from_iterable(values)
        assert set(s.diff_element(probe)) == ref - {probe}
        assert set(s.union_element(probe)) == ref | {probe}
        assert set(s) == ref  # non-mutating overloads


@settings(max_examples=60, deadline=None)
@given(values=element_lists, extra=elements)
def test_clone_is_independent(values, extra):
    for cls in CLASSES:
        original = cls.from_iterable(values)
        ref = set(values)
        c = original.clone()
        c.add(extra)
        assert set(original) == ref, cls.__name__
        assert set(c) == ref | {extra}
        if values:
            c.remove(values[0])
            assert set(original) == ref, cls.__name__
        # Mutating the original must not leak into earlier clones either.
        snapshot = set(c)
        original.add(200_001)
        assert set(c) == snapshot, cls.__name__


@settings(max_examples=60, deadline=None)
@given(values=element_lists, probe=elements)
def test_contains_matches(values, probe):
    ref = set(values)
    for cls in CLASSES:
        s = cls.from_iterable(values)
        if cls.IS_EXACT:
            assert s.contains(probe) == (probe in ref)
        elif probe in ref:
            assert s.contains(probe), f"{cls.__name__}: false negative"
        assert s.cardinality() == len(ref)


@settings(max_examples=60, deadline=None)
@given(values=element_lists)
def test_no_false_negatives_on_members(values):
    """Every member of every representation must answer ``contains`` True."""
    for cls in CLASSES:
        s = cls.from_iterable(values)
        for x in set(values):
            assert s.contains(x), cls.__name__


# A random op sequence applied to all exact representations stays in
# lockstep with Python's set; approximate representations only guarantee
# structural invariants under mixed add/remove/in-place sequences (their
# supersets/subsets interleave), checked separately below.
op = st.sampled_from(["add", "remove", "union_inplace", "diff_inplace",
                      "intersect_inplace"])
ops = st.lists(st.tuples(op, element_lists), max_size=12)


@settings(max_examples=40, deadline=None)
@given(initial=element_lists, sequence=ops)
def test_op_sequences_stay_in_lockstep(initial, sequence):
    ref = set(initial)
    sets = {cls: cls.from_iterable(initial) for cls in EXACT_CLASSES}
    for name, payload in sequence:
        if name == "add":
            x = payload[0] if payload else 0
            ref.add(x)
            for s in sets.values():
                s.add(x)
        elif name == "remove":
            x = payload[0] if payload else 0
            ref.discard(x)
            for s in sets.values():
                s.remove(x)
        else:
            other_ref = set(payload)
            if name == "union_inplace":
                ref |= other_ref
            elif name == "diff_inplace":
                ref -= other_ref
            else:
                ref &= other_ref
            for cls, s in sets.items():
                getattr(s, name)(cls.from_iterable(payload))
        for cls, s in sets.items():
            assert set(s) == ref, (cls.__name__, name)


@settings(max_examples=40, deadline=None)
@given(initial=element_lists, sequence=ops)
def test_op_sequences_keep_approx_invariants(initial, sequence):
    """Approximate sets stay structurally sound under arbitrary op mixes:
    sorted duplicate-free iteration, consistent cardinality, and no false
    negatives on their own members."""
    approx = [cls for cls in CLASSES if not cls.IS_EXACT]
    sets = {cls: cls.from_iterable(initial) for cls in approx}
    for name, payload in sequence:
        for cls, s in sets.items():
            if name in ("add", "remove"):
                getattr(s, name)(payload[0] if payload else 0)
            else:
                getattr(s, name)(cls.from_iterable(payload))
            out = list(s)
            assert out == sorted(set(out)), (cls.__name__, name)
            assert s.cardinality() == len(out), (cls.__name__, name)
            for x in out[:5]:
                assert s.contains(x), (cls.__name__, name)


@settings(max_examples=50, deadline=None)
@given(values=element_lists)
def test_iteration_is_sorted_and_to_array_roundtrips(values):
    # Strict for every class: approximate backends keep an exact member
    # store, so iteration and to_array are exact by design.
    for cls in CLASSES:
        s = cls.from_iterable(values)
        out = list(s)
        assert out == sorted(set(values))
        assert np.array_equal(s.to_array(), np.array(out, dtype=np.int64))
        # Rebuilding from to_array reproduces the set.
        assert cls.from_sorted_array(s.to_array()) == s

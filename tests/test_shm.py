"""Zero-copy shared-memory transport (platform/shm.py) and its session
lifecycle.

The contract under test: arrays exported by the parent come back as
read-only zero-copy views with identical contents; the exporter owns
every segment it creates (refcounted release, idempotent close, a
finalize backstop) so a session that closes — normally, twice, or after
a worker blew up mid-shard — never leaves a segment behind in
``/dev/shm``; and, the acceptance criterion, a ``transport="shm"``
session produces a suite artifact that is cell-by-cell identical to the
pickle-transport and sequential runs while shipping an order of
magnitude fewer payload bytes.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.core import counters as _counters
from repro.graph import load_dataset
from repro.graph.set_graph import (
    MaterializationCache,
    flatten_set_graph,
    unflatten_set_graph,
)
from repro.platform.runner import diff_payloads
from repro.platform.session import MiningSession
from repro.platform.shm import (
    ArrayRef,
    SegmentExporter,
    attach_graph_payload,
    detach_all,
    export_graph_payload,
    map_array,
)
from repro.platform.suite import ExperimentPlan
from repro.core.sorted_set import SortedSet

#: One dataset, every smoke kernel/backend/ordering — the identity plan.
SHM_PLAN = replace(ExperimentPlan.smoke(), datasets=("sc-ht-mini",))


def _segments_gone(names):
    """True when none of *names* still exists under /dev/shm.

    Checked against the session's own segment names (not a directory
    snapshot diff) so concurrently running test shards cannot race the
    assertion.
    """
    live = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
    return not (set(name.lstrip("/") for name in names) & live)


@pytest.fixture
def exporter():
    exporter = SegmentExporter()
    yield exporter
    exporter.close()
    detach_all()


class TestArrayTransport:
    def test_roundtrip_is_exact_and_readonly(self, exporter):
        array = np.arange(1000, dtype=np.int64) * 3
        ref = exporter.export_array(array)
        view = map_array(ref)
        np.testing.assert_array_equal(view, array)
        assert view.dtype == array.dtype
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 7

    def test_ref_is_tiny_and_picklable(self, exporter):
        import pickle

        array = np.zeros(1 << 16, dtype=np.int64)  # 512 KiB of payload
        ref = exporter.export_array(array)
        blob = pickle.dumps(ref)
        assert len(blob) < 200  # descriptor, not data
        again = pickle.loads(blob)
        assert again == ref
        assert ref.nbytes == array.nbytes

    def test_zero_length_arrays_need_no_segment(self, exporter):
        ref = exporter.export_array(np.empty(0, dtype=np.float64))
        assert ref.name == ""
        assert exporter.segment_names() == []
        view = map_array(ref)
        assert view.shape == (0,)
        assert view.dtype == np.float64

    def test_repeat_export_is_refcounted_reuse(self, exporter):
        array = np.arange(64, dtype=np.int64)
        first = exporter.export_array(array)
        second = exporter.export_array(array)
        assert first == second
        assert len(exporter.segment_names()) == 1
        exporter.release(first)          # one ref still held
        assert exporter.segment_names() == [first.name]
        exporter.release(first)          # last ref: unlinked
        assert exporter.segment_names() == []
        assert _segments_gone([first.name])

    def test_close_is_idempotent_and_unlinks_everything(self, exporter):
        refs = [exporter.export_array(np.arange(n + 1, dtype=np.int64))
                for n in range(3)]
        names = exporter.segment_names()
        assert len(names) == 3
        exporter.close()
        exporter.close()  # idempotent
        assert exporter.closed
        assert exporter.segment_names() == []
        assert _segments_gone(names)
        with pytest.raises(RuntimeError):
            exporter.export_array(np.arange(4, dtype=np.int64))
        assert all(ref.name for ref in refs)


class TestSetGraphFlattening:
    def test_flatten_unflatten_roundtrip(self):
        graph = load_dataset("sc-ht-mini")
        cache = MaterializationCache()
        _, sg = cache.oriented(graph, SortedSet, "DGR")
        offsets, values = flatten_set_graph(sg)
        assert offsets[0] == 0 and offsets[-1] == len(values)
        rebuilt = unflatten_set_graph(offsets, values, SortedSet,
                                      directed=sg.directed)
        assert rebuilt.num_nodes == sg.num_nodes
        for v in range(sg.num_nodes):
            np.testing.assert_array_equal(
                rebuilt.out_neigh(v).to_array(),
                sg.out_neigh(v).to_array(),
            )

    def test_graph_payload_roundtrip(self, exporter):
        graph = load_dataset("sc-ht-mini")
        cache = MaterializationCache()
        cache.set_graph(graph, SortedSet)
        cache.oriented(graph, SortedSet, "DGR")
        state = cache.export_graph_state(graph)
        payload = export_graph_payload(exporter, graph, state)
        rebuilt, rebuilt_state = attach_graph_payload(payload)
        np.testing.assert_array_equal(rebuilt.offsets, graph.offsets)
        np.testing.assert_array_equal(rebuilt.adjacency, graph.adjacency)
        assert rebuilt_state["orderings"] == state["orderings"]
        assert set(rebuilt_state["graphs"]) == set(state["graphs"])
        seeded = MaterializationCache()
        seeded.seed_graph_state(rebuilt, rebuilt_state)


class TestSessionLifecycle:
    def test_close_unlinks_every_segment(self):
        with MiningSession(workers=2, transport="shm") as session:
            session.warm("sc-ht-mini", backends=("sorted", "bitset"))
            session.query("tc").on("sc-ht-mini").run_many(
                [{"backend": "bitset"}]
            )
            names = session._exporter.segment_names()
            assert names  # the warm state really rode shared memory
        assert _segments_gone(names)

    def test_double_close_leaves_nothing(self):
        session = MiningSession(workers=2, transport="shm")
        session.warm("sc-ht-mini", backends=("sorted",))
        session.query("tc").on("sc-ht-mini").run_many([{"backend": "sorted"}])
        names = session._exporter.segment_names()
        session.close()
        session.close()
        assert _segments_gone(names)

    def test_worker_exception_mid_shard_does_not_leak(self, monkeypatch):
        # Patch run_cell *before* the pool forks: the workers inherit the
        # parent's memory, so their shard raises mid-flight.  The session
        # must still tear down cleanly and unlink its segments.
        import repro.platform.suite as suite_mod

        def _boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(suite_mod, "run_cell", _boom)
        with MiningSession(workers=2, transport="shm") as session:
            session.warm("sc-ht-mini", backends=("sorted",))
            with pytest.raises(RuntimeError, match="kernel exploded"):
                session.query("tc").on("sc-ht-mini").run_many(
                    [{"backend": "sorted"}]
                )
            names = session._exporter.segment_names()
            assert names
        assert _segments_gone(names)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            MiningSession(transport="carrier-pigeon")


class TestTransportIdentity:
    @pytest.fixture(scope="class")
    def sequential_payload(self):
        with MiningSession() as session:
            return session.run_plan(SHM_PLAN)[0]

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "stealing"])
    def test_shm_artifact_identical_up_to_timing(self, sequential_payload,
                                                 schedule):
        # The acceptance gate: transport is invisible in the artifact.
        with MiningSession(workers=2, schedule=schedule,
                           transport="shm") as session:
            session.warm("sc-ht-mini", backends=("sorted", "bitset"),
                         orderings=("DGR",))
            payload = session.run_plan(SHM_PLAN)[0]
        assert diff_payloads(sequential_payload, payload) == []

    def test_shm_ships_fewer_payload_bytes_than_pickle(self):
        shipped = {}
        for transport in ("pickle", "shm"):
            before = _counters.snapshot()
            with MiningSession(workers=2, schedule="static",
                               transport=transport) as session:
                session.warm("sc-ht-mini", backends=("sorted", "bitset"),
                             orderings=("DGR",))
                session.run_plan(SHM_PLAN)
            shipped[transport] = before.delta(
                _counters.snapshot()).payload_bytes_shipped
        # Same plan, same warm state: the descriptor payload must be an
        # order of magnitude lighter than shipping the arrays by value.
        assert shipped["shm"] * 10 <= shipped["pickle"]


class TestWorkerDatasetLru:
    def test_eviction_honors_capacity_recency_and_pins(self, monkeypatch):
        # The in-process replica of a pool worker's dataset LRU: fill to
        # capacity, pin one custom entry, then churn past the bound.
        from repro.platform import runner

        monkeypatch.setattr(runner, "_WORKER_STATE", runner.OrderedDict())
        monkeypatch.setattr(runner, "_WORKER_PINNED", set())
        monkeypatch.setattr(runner, "_WORKER_BACKENDS", {})
        plan = ExperimentPlan()
        cache = MaterializationCache()
        runner._WORKER_STATE["mine"] = (load_dataset("antcolony5-mini"),
                                        cache)
        runner._WORKER_PINNED.add("mine")
        fill = ("sc-ht-mini", "antcolony6-mini", "jester2-mini")
        for name in fill:
            runner._worker_dataset(plan, name)
        assert len(runner._WORKER_STATE) == runner._WORKER_DATASET_CAPACITY
        # A hit refreshes recency: sc-ht-mini is no longer the LRU.
        runner._worker_dataset(plan, "sc-ht-mini")
        runner._WORKER_BACKENDS[("antcolony6-mini", "sorted")] = SortedSet
        runner._worker_dataset(plan, "mbeacxc-mini")
        assert len(runner._WORKER_STATE) == runner._WORKER_DATASET_CAPACITY
        assert "mine" in runner._WORKER_STATE          # pinned survives
        assert "sc-ht-mini" in runner._WORKER_STATE    # recently used
        assert "antcolony6-mini" not in runner._WORKER_STATE  # true LRU
        # The victim's memoized backends left with it.
        assert not any(k[0] == "antcolony6-mini"
                       for k in runner._WORKER_BACKENDS)
        # Churn far past capacity: the bound and the pin both keep holding.
        for name in ("gearbox-mini", "jester2-mini", "antcolony6-mini"):
            runner._worker_dataset(plan, name)
            assert len(runner._WORKER_STATE) <= \
                runner._WORKER_DATASET_CAPACITY
        assert "mine" in runner._WORKER_STATE


class _ExplodingSegment:
    """A segment whose teardown fails every way it can."""

    size = 0

    def close(self):
        raise OSError("close boom")

    def unlink(self):
        raise OSError("unlink boom")


class TestSuppressedCleanupFailures:
    def test_teardown_failures_are_counted_and_logged(self, caplog):
        import logging

        from repro.platform.shm import _unlink_segments

        before = _counters.COUNTERS.shm_suppressed
        segments = {"gms-test-boom": _ExplodingSegment()}
        with caplog.at_level(logging.DEBUG, logger="repro.platform.shm"):
            _unlink_segments(segments)  # must not raise
        # One suppression per swallowed failure: close + unlink.
        assert _counters.COUNTERS.shm_suppressed == before + 2
        assert segments == {}
        records = [r for r in caplog.records
                   if "suppressed shm" in r.message]
        assert {("close" in r.message, "unlink" in r.message)
                for r in records} == {(True, False), (False, True)}
        # The traceback rides along for post-hoc diagnosis.
        assert all(r.exc_info for r in records)

    def test_repeat_unlink_stays_silent(self):
        # FileNotFoundError on unlink is the *expected* idempotent-close
        # case and must not inflate the suppression signal.
        exporter = SegmentExporter()
        exporter.export_array(np.arange(8, dtype=np.int64))
        before = _counters.COUNTERS.shm_suppressed
        exporter.close()
        exporter.close()
        assert _counters.COUNTERS.shm_suppressed == before

    def test_suppressions_surface_in_session_stats(self):
        before = _counters.COUNTERS.shm_suppressed
        _counters.COUNTERS.record_suppressed()
        try:
            with MiningSession() as session:
                assert session.stats()["pool"]["shm_suppressed"] == \
                    before + 1
        finally:
            _counters.COUNTERS.shm_suppressed = before


class TestReleaseGraphPayload:
    def test_release_unlinks_what_export_created(self):
        from repro.platform.shm import (
            export_graph_payload,
            release_graph_payload,
        )

        graph = load_dataset("sc-ht-mini")
        exporter = SegmentExporter()
        payload = export_graph_payload(exporter, graph, None)
        assert exporter.segment_names() != []
        release_graph_payload(exporter, payload)
        assert exporter.segment_names() == []
        exporter.close()

    def test_release_is_refcounted_not_destructive(self):
        # Two payloads sharing the same source arrays: releasing one must
        # leave the other's segments alive (dedupe hands out refcounted
        # reuses, and release drops exactly the refs export took).
        from repro.platform.shm import (
            export_graph_payload,
            map_array,
            release_graph_payload,
        )

        graph = load_dataset("sc-ht-mini")
        exporter = SegmentExporter()
        first = export_graph_payload(exporter, graph, None)
        second = export_graph_payload(exporter, graph, None)
        release_graph_payload(exporter, first)
        survivors = exporter.segment_names()
        assert survivors != []
        offsets = map_array(second["csr"]["offsets"])
        assert offsets[-1] == graph.num_edges * 2
        release_graph_payload(exporter, second)
        assert exporter.segment_names() == []
        exporter.close()


class TestWarmPayloadLeakRegression:
    def test_failed_shm_entry_releases_segments_before_fallback(
        self, monkeypatch
    ):
        """The PR-8 leak: shm export succeeded, entry pickling failed,
        the fallback shipped by pickle — and the dead segments stayed
        pinned in the exporter until close().  The failed candidate must
        release every reference it took."""
        import pickle as real_pickle

        import repro.platform.session as session_mod

        class _FailShmTuples:
            @staticmethod
            def dumps(obj, *args, **kwargs):
                if isinstance(obj, tuple) and obj and obj[0] == "shm":
                    raise RuntimeError("simulated entry-pickle failure")
                return real_pickle.dumps(obj, *args, **kwargs)

            loads = staticmethod(real_pickle.loads)

        session = MiningSession(workers=2, transport="shm")
        try:
            session.load("sc-ht-mini")
            session.warm("sc-ht-mini", backends=("sorted",),
                         orderings=("DGR",))
            monkeypatch.setattr(session_mod, "pickle", _FailShmTuples)
            payload, shipped = session._warm_payload()
            # The dataset still shipped — by value, via the fallback.
            assert shipped == frozenset({"sc-ht-mini"})
            entries = real_pickle.loads(payload)
            transport = real_pickle.loads(entries["sc-ht-mini"])[0]
            assert transport == "pickle"
            # The shm candidate ran (the exporter exists) and cleaned up
            # after itself: zero segments left pinned for the session's
            # lifetime.
            assert session._exporter is not None
            assert session._exporter.segment_names() == []
        finally:
            session.close()

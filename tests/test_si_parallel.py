"""Parallel subgraph isomorphism: the Figure 7 optimization ladder."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import build_undirected
from repro.isomorphism import SI_VARIANTS, run_si_variant, si_scaling_curve


@pytest.fixture(scope="module")
def workload():
    T = nx.gnp_random_graph(40, 0.2, seed=7)
    target = build_undirected(40, list(T.edges()))
    target_labels = np.array([v % 2 for v in range(40)])
    queries = [
        build_undirected(3, [(0, 1), (1, 2), (0, 2)]),
        build_undirected(4, [(0, 1), (1, 2), (2, 3)]),
    ]
    query_labels = [np.array([0, 1, 0]), np.array([0, 1, 0, 1])]
    return target, queries, target_labels, query_labels


def test_all_variants_find_same_embeddings(workload):
    target, queries, tl, ql = workload
    counts = set()
    for variant in SI_VARIANTS:
        res = run_si_variant(
            target, queries, variant, target_labels=tl, query_labels=ql
        )
        counts.add(res.embeddings)
        assert res.embeddings > 0
    assert len(counts) == 1, f"variants disagree: {counts}"


def test_scaling_curve_monotone_non_increasing(workload):
    target, queries, tl, ql = workload
    res = run_si_variant(target, queries, "precompute",
                         target_labels=tl, query_labels=ql)
    curve = si_scaling_curve(res, [1, 2, 4, 8, 16, 32])
    for a, b in zip(curve, curve[1:]):
        assert b <= a + 1e-12

    # Speedup saturates: 32 threads no more than 32x.
    assert curve[0] / curve[-1] <= 32.01


def test_fine_splitting_produces_more_tasks(workload):
    target, queries, tl, ql = workload
    coarse = run_si_variant(target, queries, "baseline",
                            target_labels=tl, query_labels=ql)
    fine = run_si_variant(target, queries, "splitting",
                          target_labels=tl, query_labels=ql)
    assert len(fine.task_costs) > len(coarse.task_costs)


def test_stealing_uses_dynamic_policy(workload):
    target, queries, tl, ql = workload
    assert run_si_variant(target, queries, "baseline",
                          target_labels=tl, query_labels=ql).policy == "static"
    assert run_si_variant(target, queries, "stealing",
                          target_labels=tl, query_labels=ql).policy == "dynamic"


def test_unknown_variant_rejected(workload):
    target, queries, tl, ql = workload
    with pytest.raises(ValueError, match="unknown SI variant"):
        run_si_variant(target, queries, "warp-drive")

"""Graph statistics (Table 7 columns) and transformations."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    build_undirected,
    induced_subgraph,
    orient_by_rank,
    permute,
    split_neighbors,
    summarize,
    total_triangles,
    triangle_counts,
)
from tests.conftest import random_csr


class TestTriangles:
    @pytest.mark.parametrize("seed", range(4))
    def test_counts_match_networkx(self, seed):
        csr, G = random_csr(50, 200, seed)
        ours = triangle_counts(csr)
        theirs = nx.triangles(G)
        assert all(ours[v] == theirs[v] for v in G)

    def test_triangle_free(self):
        g = build_undirected(4, [(0, 1), (1, 2), (2, 3)])
        assert total_triangles(g) == 0

    def test_complete_graph(self):
        n = 7
        g = build_undirected(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        assert total_triangles(g) == n * (n - 1) * (n - 2) // 6


class TestSummary:
    def test_fields(self, karate):
        csr, G = karate
        s = summarize(csr, "karate")
        assert s.n == 34
        assert s.m == 78
        assert s.triangles == sum(nx.triangles(G).values()) // 3
        assert s.max_degree == max(dict(G.degree()).values())
        assert s.degeneracy == max(nx.core_number(G).values())
        assert s.diameter_estimate >= nx.diameter(G) - 1  # double sweep lower bound quality
        assert s.t_skew > 0
        assert "karate" in s.row()

    def test_empty_graph_summary(self):
        s = summarize(build_undirected(0, []), "empty")
        assert s.n == 0 and s.triangles == 0


class TestOrientByRank:
    @pytest.mark.parametrize("seed", range(3))
    def test_is_dag_partition(self, seed):
        csr, _ = random_csr(40, 160, seed)
        rank = np.random.default_rng(seed).permutation(40)
        dag = orient_by_rank(csr, rank)
        assert dag.directed
        assert dag.num_edges == csr.num_edges  # each edge kept exactly once
        for u in dag.vertices():
            for v in dag.out_neigh(u).tolist():
                assert rank[u] < rank[v] or (rank[u] == rank[v] and u < v)

    def test_rejects_directed_input(self):
        from repro.graph import build_directed

        g = build_directed(3, [(0, 1)])
        with pytest.raises(ValueError):
            orient_by_rank(g, np.arange(3))


class TestPermute:
    def test_roundtrip(self):
        csr, _ = random_csr(30, 90, 1)
        perm = np.random.default_rng(0).permutation(30)
        inv = np.empty(30, dtype=np.int64)
        inv[perm] = np.arange(30)
        assert permute(permute(csr, perm), inv) == csr

    def test_preserves_degree_multiset(self):
        csr, _ = random_csr(30, 90, 2)
        perm = np.random.default_rng(1).permutation(30)
        assert sorted(csr.degrees()) == sorted(permute(csr, perm).degrees())

    def test_rejects_non_permutation(self):
        csr, _ = random_csr(5, 6, 3)
        with pytest.raises(ValueError):
            permute(csr, np.zeros(5, dtype=np.int64))


class TestInducedSubgraph:
    def test_matches_networkx(self):
        csr, G = random_csr(30, 120, 4)
        verts = [1, 3, 5, 7, 9, 11]
        sub, mapping = induced_subgraph(csr, verts)
        nx_sub = G.subgraph(verts)
        assert sub.num_edges == nx_sub.number_of_edges()
        assert mapping.tolist() == sorted(verts)

    def test_empty_selection(self):
        csr, _ = random_csr(10, 20, 5)
        sub, mapping = induced_subgraph(csr, [])
        assert sub.num_nodes == 0


class TestSplitNeighbors:
    def test_partition(self):
        csr, _ = random_csr(25, 80, 6)
        rank = np.random.default_rng(2).permutation(25)
        for v in range(25):
            later, earlier = split_neighbors(csr.out_neigh(v), rank, rank[v])
            assert len(later) + len(earlier) == csr.out_degree(v)
            assert all(rank[u] > rank[v] for u in later.tolist())
            assert all(rank[u] < rank[v] for u in earlier.tolist())

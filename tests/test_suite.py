"""The declarative experiment suite and the cross-dataset aggregator.

Covers the :class:`~repro.platform.suite.ExperimentPlan` resolution rules,
the unified ``results/suite_<dataset>.json`` artifact schema, the per-cell
counter threading, the kernel registry hook, the ``python -m repro suite``
/ ``python -m repro aggregate`` subcommands, and the aggregate's
per-backend speed-vs-accuracy folding of both artifact families.
"""

from __future__ import annotations

import json
from itertools import product

import pytest

from repro.__main__ import main
from repro.platform.aggregate import aggregate_results
from repro.platform.suite import (
    SUITE_KERNELS,
    ExperimentPlan,
    plan_from_argv,
    register_suite_kernel,
    run_suite,
)

SMOKE = ExperimentPlan.smoke()


@pytest.fixture(scope="module")
def smoke_payload():
    """One smoke-suite run shared by the schema/coverage assertions."""
    payloads = run_suite(SMOKE)
    assert len(payloads) == 1
    return payloads[0]


class TestExperimentPlan:
    def test_smoke_matrix_dimensions(self):
        # The CI matrix: 2 backends × 2 orderings × 3 kernels.
        assert len(SMOKE.set_classes) == 2
        assert len(SMOKE.orderings) == 2
        assert len(SMOKE.kernels) == 3

    def test_reference_backend_always_runs_first(self):
        assert SMOKE.resolved_set_classes()[0] == "sorted"
        explicit = ExperimentPlan(set_classes=("bitset", "sorted", "hash"))
        assert explicit.resolved_set_classes() == ["sorted", "bitset", "hash"]

    def test_empty_selections_mean_everything_registered(self):
        plan = ExperimentPlan(kernels=(), set_classes=())
        assert [k.name for k in plan.resolved_kernels()] == list(SUITE_KERNELS)
        resolved = plan.resolved_set_classes()
        for name in ("sorted", "bitset", "roaring", "bloom", "kmv"):
            assert name in resolved

    def test_unknown_kernel_and_ordering_rejected(self):
        with pytest.raises(KeyError, match="unknown suite kernels"):
            ExperimentPlan(kernels=("bogus",)).resolved_kernels()
        with pytest.raises(KeyError, match="unknown orderings"):
            ExperimentPlan(orderings=("BOGUS",)).resolved_orderings()

    def test_plan_from_argv_roundtrip(self):
        plan = plan_from_argv([
            "--datasets", "sc-ht-mini", "--kernels", "tc", "bk",
            "--set-classes", "bitset", "--orderings", "DGR",
            "--k", "5", "--repeats", "2", "--bloom-fpr", "0.05",
        ])
        assert plan.datasets == ("sc-ht-mini",)
        assert plan.kernels == ("tc", "bk")
        assert plan.set_classes == ("bitset",)
        assert plan.k == 5 and plan.repeats == 2
        assert plan.bloom_fpr == 0.05

    def test_smoke_flag_overrides_selection(self):
        assert plan_from_argv(["--smoke", "--k", "7"]) == SMOKE


class TestRunSuite:
    def test_every_kernel_under_every_backend(self, smoke_payload):
        backends = set(SMOKE.set_classes) | {"sorted"}
        seen = {
            (c["kernel"], c["set_class"]) for c in smoke_payload["cells"]
        }
        for kernel, backend in product(SMOKE.kernels, backends):
            assert (kernel, backend) in seen

    def test_unified_schema_fields(self, smoke_payload):
        assert smoke_payload["schema"] == "gms-suite/v2"
        for field in ("dataset", "num_nodes", "num_edges", "plan",
                      "reference_backend", "materialization", "counters",
                      "execution", "cells"):
            assert field in smoke_payload
        for cell in smoke_payload["cells"]:
            for field in ("kernel", "ordering", "set_class",
                          "resolved_class", "exact", "value", "reference",
                          "rel_error", "seconds", "set_ops", "point_ops",
                          "memory_traffic", "sketch_builds", "extras"):
                assert field in cell, field

    def test_per_kernel_extras(self, smoke_payload):
        # BK cells expose the recursion size plus per-task costs, kClist
        # cells the per-task costs, and the scalar kernels nothing — the
        # work profiles the aggregate folds into distribution stats.
        for cell in smoke_payload["cells"]:
            extras = cell["extras"]
            if cell["kernel"] == "bk":
                assert extras["recursive_calls"] > 0
                assert len(extras["task_costs"]) > 0
            elif cell["kernel"] == "4clique":
                assert len(extras["task_costs"]) > 0
                assert "recursive_calls" not in extras
            elif cell["kernel"] == "tc":
                assert extras == {}

    def test_payload_counters_merge_cell_deltas(self, smoke_payload):
        totals = smoke_payload["counters"]
        for field in ("set_ops", "point_ops", "sketch_builds",
                      "memory_traffic"):
            assert totals[field] == sum(
                c[field] for c in smoke_payload["cells"]
            )
        assert totals["set_ops"] > 0

    def test_execution_block_models_every_policy(self, smoke_payload):
        execution = smoke_payload["execution"]
        assert execution["workers"] == 1
        assert execution["schedule"] == "sequential"
        assert execution["measured_seconds"] > 0
        total = execution["cells_seconds_total"]
        assert total == pytest.approx(
            sum(c["seconds"] for c in smoke_payload["cells"])
        )
        for policy in ("static", "dynamic", "stealing"):
            modeled = execution["modeled"][policy]
            # One worker: the model degenerates to the sequential sum.
            assert modeled["makespan_seconds"] == pytest.approx(total)
            assert modeled["speedup"] == pytest.approx(1.0)

    def test_exact_backends_match_reference(self, smoke_payload):
        exact_cells = [c for c in smoke_payload["cells"] if c["exact"]]
        assert exact_cells
        assert all(c["rel_error"] == 0.0 for c in exact_cells)
        assert all(c["value"] == c["reference"] for c in exact_cells)

    def test_ordering_free_kernels_run_once_per_backend(self, smoke_payload):
        tc_cells = [c for c in smoke_payload["cells"] if c["kernel"] == "tc"]
        assert all(c["ordering"] == "-" for c in tc_cells)
        # One cell per backend (2 planned + the reference).
        assert len(tc_cells) == len(SMOKE.set_classes) + 1

    def test_counters_threaded_through_cells(self, smoke_payload):
        # Set-algebra kernels must meter bulk set ops...
        assert all(
            c["set_ops"] > 0
            for c in smoke_payload["cells"] if c["kernel"] == "tc"
        )
        # ...and approximate backends must meter their sketch builds.
        # (tc's sketches live in the warmed materialization cache, so the
        # per-outer-vertex pivot sketches of sketch-pivot BK are the cells
        # where per-run builds must show.)
        bloom_bk = [
            c for c in smoke_payload["cells"]
            if c["set_class"] == "bloom" and c["kernel"] == "bk"
        ]
        assert bloom_bk and all(c["sketch_builds"] > 0 for c in bloom_bk)

    def test_materialization_cache_shared_across_cells(self, smoke_payload):
        stats = smoke_payload["materialization"]
        assert stats["hits"] > 0
        # 3 kernels × 3 backends × 2 orderings would be 18 oriented
        # materializations without the cache; sharing must cut that down.
        assert stats["oriented"] < 18

    def test_custom_kernel_joins_the_sweep(self):
        def _edges(graph, set_cls, ordering, plan, cache):
            sg = cache.set_graph(graph, set_cls)
            return sum(sg.out_degree(v) for v in sg.vertices()) // 2

        register_suite_kernel("edges", _edges, "edge count (test kernel)",
                              uses_ordering=False)
        try:
            plan = ExperimentPlan(
                datasets=("sc-ht-mini",), kernels=("edges",),
                set_classes=("bitset",), orderings=("DGR",),
            )
            payload = run_suite(plan)[0]
            cells = payload["cells"]
            assert {c["kernel"] for c in cells} == {"edges"}
            assert all(c["value"] == payload["num_edges"] for c in cells)
            assert all(c["rel_error"] == 0.0 for c in cells)
        finally:
            del SUITE_KERNELS["edges"]


class TestSuiteCommand:
    def test_suite_smoke_writes_artifact(self, tmp_path, monkeypatch, capsys):
        import repro.platform.bench as bench

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        assert main(["suite", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Experiment suite" in out
        artifact = tmp_path / "suite_sc-ht-mini.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "gms-suite/v2"
        assert payload["cells"]

    def test_suite_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "suite" in out and "aggregate" in out


class TestAggregate:
    @pytest.fixture
    def results_dir(self, tmp_path, monkeypatch, capsys):
        """A results dir holding one suite + one budget-sweep artifact."""
        import repro.platform.bench as bench

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        assert main(["suite", "--smoke"]) == 0
        assert main(["budget-sweep", "--dataset", "sc-ht-mini",
                     "--repeats", "1"]) == 0
        capsys.readouterr()
        return tmp_path

    def test_merges_both_artifact_families(self, results_dir):
        payload = aggregate_results(str(results_dir))
        assert payload["schema"] == "gms-aggregate/v2"
        assert payload["datasets"] == ["sc-ht-mini"]
        assert payload["sources"]["suite"] == ["suite_sc-ht-mini.json"]
        assert payload["sources"]["budget_sweep"] == [
            "budget_sweep_sc-ht-mini.json"
        ]
        backends = payload["backends"]
        # Suite backends by registry name, sweep rows by resolved class.
        for name in ("sorted", "bitset", "bloom"):
            assert name in backends
        assert any(name.startswith("KMVSketchSet") for name in backends)

    def test_per_backend_speed_vs_accuracy_summary(self, results_dir):
        backends = aggregate_results(str(results_dir))["backends"]
        for name, summary in backends.items():
            assert summary["cells"] > 0
            assert 0.0 <= summary["mean_rel_error"] <= summary["max_rel_error"]
            assert summary["mean_seconds"] > 0.0
            assert summary["per_kernel"]
        assert backends["sorted"]["exact"]
        assert backends["sorted"]["max_rel_error"] == 0.0
        assert not backends["bloom"]["exact"]
        # The reference backend's speedup over itself is identically 1.
        assert backends["sorted"]["mean_speedup"] == pytest.approx(1.0)

    def test_cli_writes_aggregate_artifact(self, results_dir, capsys):
        assert main(["aggregate", "--results-dir", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "Cross-dataset aggregate" in out
        merged = json.loads((results_dir / "aggregate.json").read_text())
        assert merged["schema"] == "gms-aggregate/v2"

    def test_empty_results_dir_is_an_error(self, tmp_path, capsys):
        with pytest.raises(FileNotFoundError):
            aggregate_results(str(tmp_path))
        assert main(["aggregate", "--results-dir", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().out


def _synthetic_suite_artifact(dataset, workers, schedule, measured,
                              bk_calls, costs):
    """A minimal gms-suite/v2 payload with known work profiles."""
    cell_seconds = [0.4, 0.1]
    modeled_makespan = 0.3 if workers > 1 else sum(cell_seconds)
    total = sum(cell_seconds)
    return {
        "schema": "gms-suite/v2",
        "dataset": dataset,
        "num_nodes": 10,
        "num_edges": 20,
        "plan": {},
        "reference_backend": "sorted",
        "materialization": {"hits": 0, "misses": 0},
        "counters": {"set_ops": 1, "point_ops": 0, "sketch_builds": 0,
                     "memory_traffic": 2},
        "execution": {
            "workers": workers,
            "schedule": schedule,
            "measured_seconds": measured,
            "cells_seconds_total": total,
            "measured_speedup": total / measured,
            "modeled": {
                schedule if workers > 1 else "dynamic": {
                    "makespan_seconds": modeled_makespan,
                    "speedup": total / modeled_makespan,
                },
            },
        },
        "cells": [
            {
                "kernel": "bk", "ordering": "DGR", "set_class": "sorted",
                "resolved_class": "SortedSet", "exact": True,
                "value": 5, "seconds": cell_seconds[0],
                "set_ops": 1, "point_ops": 0, "memory_traffic": 2,
                "sketch_builds": 0,
                "extras": {"recursive_calls": bk_calls,
                           "task_costs": costs},
                "reference": 5, "rel_error": 0.0,
            },
            {
                "kernel": "tc", "ordering": "-", "set_class": "sorted",
                "resolved_class": "SortedSet", "exact": True,
                "value": 3, "seconds": cell_seconds[1],
                "set_ops": 0, "point_ops": 0, "memory_traffic": 0,
                "sketch_builds": 0, "extras": {},
                "reference": 3, "rel_error": 0.0,
            },
        ],
    }


class TestAggregateWorkDistribution:
    """The gms-suite/v2 extras folded over a synthetic artifact pair."""

    @pytest.fixture
    def results_dir(self, tmp_path):
        seq = _synthetic_suite_artifact(
            "alpha", 1, "sequential", 0.6,
            bk_calls=100, costs=[0.3, 0.1, 0.1, 0.1],
        )
        par = _synthetic_suite_artifact(
            "beta", 4, "static", 0.2,
            bk_calls=40, costs=[0.2, 0.2],
        )
        (tmp_path / "suite_alpha.json").write_text(json.dumps(seq))
        (tmp_path / "suite_beta.json").write_text(json.dumps(par))
        return tmp_path

    def test_work_distribution_summary(self, results_dir):
        payload = aggregate_results(str(results_dir))
        bk = payload["backends"]["sorted"]["per_kernel"]["bk"]
        # Totals sum across both artifacts; imbalance averages the
        # per-cell max/mean ratios: alpha 0.3/0.15 = 2.0, beta 1.0.
        assert bk["recursive_calls"] == 140
        assert bk["tasks"] == 6
        assert bk["cost_imbalance"] == pytest.approx((2.0 + 1.0) / 2)
        # Kernels without profiles carry no distribution fields.
        tc = payload["backends"]["sorted"]["per_kernel"]["tc"]
        assert "tasks" not in tc and "recursive_calls" not in tc

    def test_measured_vs_modeled_table(self, results_dir, capsys):
        payload = aggregate_results(str(results_dir))
        rows = {row["dataset"]: row for row in payload["parallel"]}
        assert rows["alpha"]["workers"] == 1
        assert rows["alpha"]["measured_speedup"] == pytest.approx(0.5 / 0.6)
        beta = rows["beta"]
        assert beta["schedule"] == "static"
        assert beta["modeled_speedup"] == pytest.approx(0.5 / 0.3)
        assert beta["measured_speedup"] == pytest.approx(0.5 / 0.2)
        assert beta["model_accuracy"] == pytest.approx(
            beta["measured_speedup"] / beta["modeled_speedup"]
        )
        # The CLI prints the measured-vs-modeled table.
        assert main(["aggregate", "--results-dir", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "Measured vs modeled parallel speedup" in out
        assert "beta" in out

    def test_v1_artifacts_still_fold(self, results_dir):
        # A legacy artifact (no execution block, no extras) must not
        # break the aggregate — it just contributes no new stats.
        legacy = _synthetic_suite_artifact(
            "gamma", 1, "sequential", 0.6, bk_calls=1, costs=[],
        )
        legacy["schema"] = "gms-suite/v1"
        del legacy["execution"]
        del legacy["counters"]
        for cell in legacy["cells"]:
            del cell["extras"]
        (results_dir / "suite_gamma.json").write_text(json.dumps(legacy))
        payload = aggregate_results(str(results_dir))
        assert "gamma" in payload["datasets"]
        assert {r["dataset"] for r in payload["parallel"]} == {
            "alpha", "beta"
        }

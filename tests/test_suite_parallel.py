"""The parallel experiment-suite runtime (platform/runner.py).

The contract under test: sharding the plan's cells across a process pool
— under any of the three scheduling policies, work stealing included —
produces an artifact that is
cell-by-cell identical to the sequential run on every deterministic field
(counts, software counters, cross-check anchors, extras), with only the
wall-clock measurements free to differ.  Plus the sharding policies
themselves, the suite-diff CLI that CI runs between the two smoke
artifacts, and the measured-vs-modeled execution block.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.__main__ import main
from repro.platform.runner import (
    _shards,
    diff_payloads,
    run_suite_parallel,
    strip_timing,
)
from repro.platform.suite import ExperimentPlan, run_suite
from repro.runtime.scheduler import static_chunks

#: A deliberately mixed plan: ordering-aware and ordering-free kernels,
#: the exact reference, an exact non-reference backend, and a sketched
#: backend (whose pivot recursion shape must also reproduce).
PLAN = ExperimentPlan(
    datasets=("sc-ht-mini",),
    kernels=("tc", "4clique", "bk"),
    set_classes=("bitset", "bloom"),
    orderings=("DGR", "ADG"),
    repeats=1,
)


@pytest.fixture(scope="module")
def sequential_payload():
    return run_suite(PLAN)[0]


@pytest.fixture(scope="module")
def parallel_payloads():
    """workers=4 runs of the same plan, one per scheduling policy."""
    return {
        schedule: run_suite(replace(PLAN, workers=4, schedule=schedule))[0]
        for schedule in ("static", "dynamic", "stealing")
    }


class TestDeterminism:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "stealing"])
    def test_parallel_artifact_identical_up_to_timing(
        self, sequential_payload, parallel_payloads, schedule
    ):
        # The satellite regression: run_suite(workers=4) must produce a
        # cell-by-cell identical artifact (counts, counters, cross-check
        # fields; timing excluded) under both schedules.
        assert diff_payloads(
            sequential_payload, parallel_payloads[schedule]
        ) == []

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "stealing"])
    def test_cell_order_is_canonical(
        self, sequential_payload, parallel_payloads, schedule
    ):
        # Shard completion order must never leak into the artifact.
        key = lambda c: (c["set_class"], c["kernel"], c["ordering"])
        assert (
            [key(c) for c in parallel_payloads[schedule]["cells"]]
            == [key(c) for c in sequential_payload["cells"]]
        )

    def test_strip_timing_drops_exactly_the_wall_clock(
        self, sequential_payload
    ):
        stripped = strip_timing(sequential_payload)
        for cell in stripped["cells"]:
            assert "seconds" not in cell
            assert "task_costs" not in cell["extras"]
        # Deterministic work profiles survive the projection.
        bk = [c for c in stripped["cells"] if c["kernel"] == "bk"]
        assert all(c["extras"]["recursive_calls"] > 0 for c in bk)
        # The projection is JSON-stable (what suite-diff compares).
        json.dumps(stripped)

    def test_diff_reports_a_doctored_cell(self, sequential_payload):
        doctored = json.loads(json.dumps(sequential_payload))
        doctored["cells"][3]["value"] += 1
        problems = diff_payloads(sequential_payload, doctored)
        assert problems
        assert any("value" in p for p in problems)


class TestParallelExecutionBlock:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "stealing"])
    def test_measured_and_modeled_recorded(
        self, parallel_payloads, schedule
    ):
        execution = parallel_payloads[schedule]["execution"]
        assert execution["workers"] == 4
        assert execution["schedule"] == schedule
        assert execution["measured_seconds"] > 0
        assert execution["measured_speedup"] > 0
        modeled = execution["modeled"][schedule]
        # With 4 workers the model must predict real parallelism...
        assert 1.0 < modeled["speedup"] <= 4.0
        # ...and its makespan can never beat the critical path.
        cells = parallel_payloads[schedule]["cells"]
        assert modeled["makespan_seconds"] >= max(
            c["seconds"] for c in cells
        )

    def test_per_worker_caches_are_merged(self, parallel_payloads):
        mat = parallel_payloads["static"]["materialization"]
        assert mat["workers"] >= 2  # the pool really fanned out
        assert mat["hits"] + mat["misses"] > 0
        assert mat["evictions"] == 0  # unbounded budget in this plan
        assert mat["budget_bytes"] is None


class TestSharding:
    def test_static_chunks_partition(self):
        for n, w in [(0, 4), (1, 4), (7, 3), (12, 4), (5, 8)]:
            chunks = static_chunks(n, w)
            covered = [i for s, e in chunks for i in range(s, e)]
            assert covered == list(range(n))
            assert len(chunks) <= w
        with pytest.raises(ValueError):
            static_chunks(3, 0)

    def test_static_shards_are_contiguous(self):
        specs = [("b", "k", str(i)) for i in range(10)]
        shards = _shards(specs, 3, "static")
        assert [len(s) for s in shards] == [4, 4, 2]
        flat = [index for shard in shards for index, _ in shard]
        assert flat == list(range(10))

    def test_dynamic_shards_are_single_cells(self):
        specs = [("b", "k", str(i)) for i in range(5)]
        shards = _shards(specs, 3, "dynamic")
        assert [len(s) for s in shards] == [1] * 5

    def test_bad_execution_plans_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_suite(replace(PLAN, workers=0))
        with pytest.raises(ValueError, match="schedule"):
            run_suite_parallel(replace(PLAN, workers=2, schedule="guided"))
        with pytest.raises(ValueError, match="transport"):
            run_suite(replace(PLAN, transport="rdma"))


class TestSuiteDiffCommand:
    def test_cli_agrees_and_disagrees(self, tmp_path, capsys,
                                      sequential_payload):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(sequential_payload))
        b.write_text(json.dumps(sequential_payload))
        assert main(["suite-diff", str(a), str(b)]) == 0
        assert "agree up to timing" in capsys.readouterr().out

        doctored = json.loads(json.dumps(sequential_payload))
        doctored["cells"][0]["set_ops"] += 7
        b.write_text(json.dumps(doctored))
        assert main(["suite-diff", str(a), str(b)]) == 1
        assert "differ beyond timing" in capsys.readouterr().err

    def test_cli_ignores_pure_timing_changes(self, tmp_path, capsys,
                                             sequential_payload):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(sequential_payload))
        slower = json.loads(json.dumps(sequential_payload))
        for cell in slower["cells"]:
            cell["seconds"] *= 100
            if "task_costs" in cell["extras"]:
                cell["extras"]["task_costs"] = [
                    c * 100 for c in cell["extras"]["task_costs"]
                ]
        b.write_text(json.dumps(slower))
        assert main(["suite-diff", str(a), str(b)]) == 0
        capsys.readouterr()


class TestWorkersViaCli:
    def test_suite_smoke_workers_writes_identical_cells(
        self, tmp_path, monkeypatch, capsys
    ):
        # The CI job in miniature: sequential smoke, then --workers 2,
        # then the diff between the two artifacts.
        import repro.platform.bench as bench

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        assert main(["suite", "--smoke"]) == 0
        # Renamed off the suite_*.json glob, as in CI, so a later
        # aggregate over this dir would not fold the dataset twice.
        seq = tmp_path / "smoke_sequential.json"
        (tmp_path / "suite_sc-ht-mini.json").rename(seq)
        assert main(["suite", "--smoke", "--workers", "2",
                     "--schedule", "static"]) == 0
        out = capsys.readouterr().out
        assert "static × 2 worker(s)" in out
        assert "scheduler model predicts" in out
        par = tmp_path / "suite_sc-ht-mini.json"
        assert main(["suite-diff", str(seq), str(par)]) == 0
        payload = json.loads(par.read_text())
        assert payload["plan"]["workers"] == 2
        assert payload["execution"]["schedule"] == "static"
